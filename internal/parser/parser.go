// Package parser builds an ast.Program from mini-Fortran/HPF source text.
//
// Grammar (line oriented; keywords case-insensitive):
//
//	program    = "program" ident NL { decl | directive } { stmt } "end" NL
//	decl       = "parameter" ident "=" int NL
//	           | ("integer"|"real") declitem { "," declitem } NL
//	declitem   = ident [ "(" expr { "," expr } ")" ]
//	directive  = "!hpf$" ( processors | distribute | align | loopdir ) NL
//	stmt       = assign | do | if | ifgoto | goto | continue | redistribute
//	assign     = ref "=" expr NL
//	do         = "do" ident "=" expr "," expr [ "," expr ] NL {stmt} enddo NL
//	if         = "if" "(" expr ")" "then" NL {stmt} ["else" NL {stmt}] endif NL
//	ifgoto     = "if" "(" expr ")" "goto" int NL
//	goto       = "goto" int NL
//	continue   = int "continue" NL
//	expr       = orterm  { "or"  orterm }
//	orterm     = andterm { "and" andterm }
//	andterm    = ["not"] rel
//	rel        = arith [ relop arith ]
//	arith      = term { ("+"|"-") term }
//	term       = unary { ("*"|"/") unary }
//	unary      = ["-"] primary
//	primary    = number | ref | call | "(" expr ")"
package parser

import (
	"strconv"

	"phpf/internal/ast"
	"phpf/internal/diag"
	"phpf/internal/lexer"
)

// Error is a parse error: a positioned diagnostic with stage "parse" and
// code diag.CodeParse.
type Error = diag.Diagnostic

type parser struct {
	toks []lexer.Token
	pos  int
	// pendingLoopDirs collects INDEPENDENT/NODEPS directives seen before the
	// DO loop they annotate.
	pendingLoopDirs []ast.LoopDirective
}

// Parse parses a complete program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Scan(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

// ParseExpr parses a standalone expression (used in tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Scan(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != lexer.Newline {
		return nil, p.errorf("trailing input after expression")
	}
	return e, nil
}

func (p *parser) peek() lexer.Token  { return p.toks[p.pos] }
func (p *parser) peek2() lexer.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k lexer.Kind) bool { return p.peek().Kind == k }

func (p *parser) accept(k lexer.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if !p.at(k) {
		return lexer.Token{}, p.errorf("expected %v, found %v %q", k, p.peek().Kind, p.peek().Text)
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return diag.Errorf("parse", diag.CodeParse, diag.Pos{Line: t.Line, Col: t.Col}, format, args...)
}

func (p *parser) skipNewlines() {
	for p.accept(lexer.Newline) {
	}
}

func (p *parser) expectNewline() error {
	if !p.accept(lexer.Newline) && !p.at(lexer.EOF) {
		return p.errorf("expected end of line, found %v %q", p.peek().Kind, p.peek().Text)
	}
	return nil
}

// ---------------------------------------------------------------------------

func (p *parser) parseProgram() (*ast.Program, error) {
	p.skipNewlines()
	if _, err := p.expect(lexer.KwProgram); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	prog := &ast.Program{Name: nameTok.Text}

	// Declarations and declarative directives.
	for {
		p.skipNewlines()
		switch p.peek().Kind {
		case lexer.KwParameter:
			pa, err := p.parseParameter()
			if err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, pa)
		case lexer.KwInteger, lexer.KwReal:
			ds, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, ds...)
		case lexer.HPFDirective:
			// Declarative directive, or an executable directive (loop
			// annotation / redistribute) that begins the body.
			if p.isLoopDirectiveAhead() || p.peek2().Kind == lexer.KwRedistribute {
				goto body
			}
			d, err := p.parseDeclDirective()
			if err != nil {
				return nil, err
			}
			if d != nil {
				prog.Dirs = append(prog.Dirs, d)
			}
		default:
			goto body
		}
	}

body:
	stmts, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	prog.Body = stmts
	if _, err := p.expect(lexer.KwEnd); err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	p.skipNewlines()
	if !p.at(lexer.EOF) {
		return nil, p.errorf("unexpected input after 'end'")
	}
	if len(p.pendingLoopDirs) > 0 {
		d := p.pendingLoopDirs[0]
		return nil, diag.Errorf("parse", diag.CodeParse, diag.Pos{Line: d.Line, Col: d.Col},
			"independent/nodeps directive not followed by a do loop")
	}
	return prog, nil
}

// isLoopDirectiveAhead reports whether the current HPFDirective token starts
// an INDEPENDENT/NODEPS loop directive (vs. a declarative directive).
func (p *parser) isLoopDirectiveAhead() bool {
	k := p.peek2().Kind
	return k == lexer.KwIndependent || k == lexer.KwNoDeps
}

func (p *parser) parseParameter() (*ast.Param, error) {
	kw := p.next() // parameter
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	neg := p.accept(lexer.Minus)
	lit, err := p.expect(lexer.IntLit)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseInt(lit.Text, 10, 64)
	if err != nil {
		return nil, p.errorf("bad integer %q", lit.Text)
	}
	if neg {
		v = -v
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return &ast.Param{Name: name.Text, Value: v, Line: kw.Line, Col: kw.Col}, nil
}

func (p *parser) parseVarDecl() ([]*ast.VarDecl, error) {
	kw := p.next()
	ty := ast.Integer
	if kw.Kind == lexer.KwReal {
		ty = ast.Real
	}
	var decls []*ast.VarDecl
	for {
		name, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		d := &ast.VarDecl{Name: name.Text, Type: ty, Line: name.Line, Col: name.Col}
		if p.accept(lexer.LParen) {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Dims = append(d.Dims, e)
				if !p.accept(lexer.Comma) {
					break
				}
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return decls, nil
}

// ---------------------------------------------------------------------------
// Directives

func (p *parser) parseDeclDirective() (ast.Directive, error) {
	hpf := p.next() // !hpf$
	switch p.peek().Kind {
	case lexer.KwProcessors:
		return p.parseProcessors(hpf)
	case lexer.KwDistribute:
		return p.parseDistribute(hpf)
	case lexer.KwAlign:
		return p.parseAlign(hpf)
	case lexer.KwTemplate:
		// Templates are parsed and ignored: arrays distribute directly.
		for !p.at(lexer.Newline) && !p.at(lexer.EOF) {
			p.next()
		}
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return nil, p.errorf("unknown directive %q", p.peek().Text)
}

func (p *parser) parseProcessors(hpf lexer.Token) (ast.Directive, error) {
	p.next() // processors
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	d := &ast.ProcessorsDir{Name: name.Text, Line: hpf.Line, Col: hpf.Col}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Extents = append(d.Extents, e)
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseDistFormats() ([]ast.DistFormat, error) {
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	var fms []ast.DistFormat
	for {
		switch p.peek().Kind {
		case lexer.KwBlock:
			p.next()
			fms = append(fms, ast.DistFormat{Kind: ast.DistBlock})
		case lexer.KwCyclic:
			p.next()
			fms = append(fms, ast.DistFormat{Kind: ast.DistCyclic})
		case lexer.Star:
			p.next()
			fms = append(fms, ast.DistFormat{Kind: ast.DistNone})
		default:
			return nil, p.errorf("expected block, cyclic or '*' in distribution format")
		}
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	return fms, nil
}

// parseDistribute handles both "distribute (block,*) :: a, b" and
// "distribute a(block,*)".
func (p *parser) parseDistribute(hpf lexer.Token) (ast.Directive, error) {
	p.next() // distribute
	d := &ast.DistributeDir{Line: hpf.Line, Col: hpf.Col}
	if p.at(lexer.LParen) {
		fms, err := p.parseDistFormats()
		if err != nil {
			return nil, err
		}
		d.Formats = fms
		if _, err := p.expect(lexer.DoubleColon); err != nil {
			return nil, err
		}
		for {
			name, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			d.Arrays = append(d.Arrays, name.Text)
			if !p.accept(lexer.Comma) {
				break
			}
		}
	} else {
		name, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		d.Arrays = []string{name.Text}
		fms, err := p.parseDistFormats()
		if err != nil {
			return nil, err
		}
		d.Formats = fms
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseAlign handles "align b(i) with a(i,*)" and
// "align (i) with a(i) :: b, c, d".
func (p *parser) parseAlign(hpf lexer.Token) (ast.Directive, error) {
	p.next() // align
	d := &ast.AlignDir{Line: hpf.Line, Col: hpf.Col}
	var leadingArray string
	if p.at(lexer.Ident) {
		t := p.next()
		leadingArray = t.Text
	}
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	if !p.at(lexer.RParen) {
		for {
			// A source dummy, or ":" meaning identity over all dimensions.
			if p.accept(lexer.Colon) {
				d.Dummies = append(d.Dummies, ":")
			} else {
				t, err := p.expect(lexer.Ident)
				if err != nil {
					return nil, err
				}
				d.Dummies = append(d.Dummies, t.Text)
			}
			if !p.accept(lexer.Comma) {
				break
			}
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.KwWith); err != nil {
		return nil, err
	}
	target, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	d.Target = target.Text
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	for {
		sub, err := p.parseAlignSub()
		if err != nil {
			return nil, err
		}
		d.Subs = append(d.Subs, sub)
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	if leadingArray != "" {
		d.Arrays = []string{leadingArray}
	}
	if p.accept(lexer.DoubleColon) {
		for {
			name, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			d.Arrays = append(d.Arrays, name.Text)
			if !p.accept(lexer.Comma) {
				break
			}
		}
	}
	if len(d.Arrays) == 0 {
		return nil, p.errorf("align directive names no arrays")
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseAlignSub() (ast.AlignSub, error) {
	switch p.peek().Kind {
	case lexer.Star:
		p.next()
		return ast.AlignSub{Star: true}, nil
	case lexer.Colon:
		p.next()
		return ast.AlignSub{Dummy: ":"}, nil
	case lexer.IntLit:
		t := p.next()
		v, _ := strconv.ParseInt(t.Text, 10, 64)
		return ast.AlignSub{Const: true, Value: v}, nil
	case lexer.Ident:
		t := p.next()
		sub := ast.AlignSub{Dummy: t.Text}
		if p.accept(lexer.Plus) {
			lit, err := p.expect(lexer.IntLit)
			if err != nil {
				return ast.AlignSub{}, err
			}
			sub.Offset, _ = strconv.ParseInt(lit.Text, 10, 64)
		} else if p.accept(lexer.Minus) {
			lit, err := p.expect(lexer.IntLit)
			if err != nil {
				return ast.AlignSub{}, err
			}
			v, _ := strconv.ParseInt(lit.Text, 10, 64)
			sub.Offset = -v
		}
		return sub, nil
	}
	return ast.AlignSub{}, p.errorf("bad align subscript")
}

// parseLoopDirective parses "!hpf$ independent [, new(a,b)]" or
// "!hpf$ nodeps [, new(a,b)]".
func (p *parser) parseLoopDirective() error {
	hpf := p.next() // !hpf$
	d := ast.LoopDirective{Line: hpf.Line, Col: hpf.Col}
	for {
		switch p.peek().Kind {
		case lexer.KwIndependent:
			p.next()
			d.Independent = true
		case lexer.KwNoDeps:
			p.next()
			d.NoDeps = true
		case lexer.KwNew:
			p.next()
			if _, err := p.expect(lexer.LParen); err != nil {
				return err
			}
			for {
				name, err := p.expect(lexer.Ident)
				if err != nil {
					return err
				}
				d.New = append(d.New, name.Text)
				if !p.accept(lexer.Comma) {
					break
				}
			}
			if _, err := p.expect(lexer.RParen); err != nil {
				return err
			}
		default:
			return p.errorf("expected independent, nodeps or new in loop directive")
		}
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if err := p.expectNewline(); err != nil {
		return err
	}
	p.pendingLoopDirs = append(p.pendingLoopDirs, d)
	return nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) parseStmts() ([]ast.Stmt, error) {
	var stmts []ast.Stmt
	for {
		p.skipNewlines()
		switch p.peek().Kind {
		case lexer.KwEnd, lexer.KwEndDo, lexer.KwEndIf, lexer.KwElse, lexer.EOF:
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	switch p.peek().Kind {
	case lexer.HPFDirective:
		if p.isLoopDirectiveAhead() {
			if err := p.parseLoopDirective(); err != nil {
				return nil, err
			}
			return nil, nil // attaches to next DO
		}
		if p.peek2().Kind == lexer.KwRedistribute {
			return p.parseRedistribute()
		}
		return nil, p.errorf("unexpected directive in program body")
	case lexer.KwDo:
		return p.parseDo()
	case lexer.KwIf:
		return p.parseIf()
	case lexer.KwGoto:
		t := p.next()
		lab, err := p.expect(lexer.IntLit)
		if err != nil {
			return nil, err
		}
		v, _ := strconv.ParseInt(lab.Text, 10, 32)
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		return &ast.Goto{Label: int(v), Line: t.Line, Col: t.Col}, nil
	case lexer.IntLit:
		// "nnn continue"
		lab := p.next()
		if _, err := p.expect(lexer.KwContinue); err != nil {
			return nil, err
		}
		v, _ := strconv.ParseInt(lab.Text, 10, 32)
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		return &ast.Continue{Label: int(v), Line: lab.Line, Col: lab.Col}, nil
	case lexer.Ident:
		return p.parseAssign()
	}
	return nil, p.errorf("expected statement, found %v %q", p.peek().Kind, p.peek().Text)
}

func (p *parser) parseRedistribute() (ast.Stmt, error) {
	hpf := p.next() // !hpf$
	p.next()        // redistribute
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	fms, err := p.parseDistFormats()
	if err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return &ast.Redistribute{Array: name.Text, Formats: fms, Line: hpf.Line, Col: hpf.Col}, nil
}

func (p *parser) parseAssign() (ast.Stmt, error) {
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return &ast.Assign{Lhs: lhs, Rhs: rhs, Line: lhs.Line, Col: lhs.Col}, nil
}

func (p *parser) parseDo() (ast.Stmt, error) {
	doTok := p.next()
	v, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Assign); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Comma); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step ast.Expr
	if p.accept(lexer.Comma) {
		step, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	loop := &ast.DoLoop{Var: v.Text, Lo: lo, Hi: hi, Step: step, Line: doTok.Line, Col: doTok.Col}
	loop.Dirs = p.pendingLoopDirs
	p.pendingLoopDirs = nil
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	loop.Body = body
	endTok := p.peek()
	if p.accept(lexer.KwEndDo) { // "enddo"
	} else {
		if _, err := p.expect(lexer.KwEnd); err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.KwDo); err != nil {
			return nil, err
		}
	}
	loop.EndLine = endTok.Line
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return loop, nil
}

func (p *parser) parseIf() (ast.Stmt, error) {
	ifTok := p.next()
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	switch p.peek().Kind {
	case lexer.KwThen:
		p.next()
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		thenStmts, err := p.parseStmts()
		if err != nil {
			return nil, err
		}
		var elseStmts []ast.Stmt
		if p.accept(lexer.KwElse) {
			if err := p.expectNewline(); err != nil {
				return nil, err
			}
			elseStmts, err = p.parseStmts()
			if err != nil {
				return nil, err
			}
		}
		if p.accept(lexer.KwEndIf) { // "endif"
		} else {
			if _, err := p.expect(lexer.KwEnd); err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.KwIf); err != nil {
				return nil, err
			}
		}
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		return &ast.If{Cond: cond, Then: thenStmts, Else: elseStmts, Line: ifTok.Line, Col: ifTok.Col}, nil
	case lexer.KwGoto:
		p.next()
		lab, err := p.expect(lexer.IntLit)
		if err != nil {
			return nil, err
		}
		v, _ := strconv.ParseInt(lab.Text, 10, 32)
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		return &ast.IfGoto{Cond: cond, Label: int(v), Line: ifTok.Line, Col: ifTok.Col}, nil
	default:
		// Logical IF with a single assignment: "if (c) x = e".
		lhs, err := p.parseRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.Assign); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		asn := &ast.Assign{Lhs: lhs, Rhs: rhs, Line: ifTok.Line, Col: ifTok.Col}
		return &ast.If{Cond: cond, Then: []ast.Stmt{asn}, Line: ifTok.Line, Col: ifTok.Col}, nil
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(lexer.KwOr) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(lexer.KwAnd) {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.accept(lexer.KwNot) {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Not{X: x}, nil
	}
	return p.parseRel()
}

var relOps = map[lexer.Kind]ast.Op{
	lexer.Eq: ast.OpEq, lexer.Ne: ast.OpNe,
	lexer.Lt: ast.OpLt, lexer.Le: ast.OpLe,
	lexer.Gt: ast.OpGt, lexer.Ge: ast.OpGe,
}

func (p *parser) parseRel() (ast.Expr, error) {
	l, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	if op, ok := relOps[p.peek().Kind]; ok {
		p.next()
		r, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		return &ast.BinOp{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseArith() (ast.Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.Op
		switch p.peek().Kind {
		case lexer.Plus:
			op = ast.Add
		case lexer.Minus:
			op = ast.Sub
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseTerm() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.Op
		switch p.peek().Kind {
		case lexer.Star:
			op = ast.Mul
		case lexer.Slash:
			op = ast.Div
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &ast.BinOp{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.accept(lexer.Minus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryMinus{X: x}, nil
	}
	p.accept(lexer.Plus)
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	switch p.peek().Kind {
	case lexer.IntLit:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.Text)
		}
		return &ast.IntConst{Value: v}, nil
	case lexer.RealLit:
		t := p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad real literal %q", t.Text)
		}
		return &ast.RealConst{Value: v}, nil
	case lexer.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return e, nil
	case lexer.Ident:
		name := p.peek().Text
		if _, isIntrinsic := ast.Intrinsics[name]; isIntrinsic && p.peek2().Kind == lexer.LParen {
			return p.parseCall()
		}
		return p.parseRef()
	}
	return nil, p.errorf("expected expression, found %v %q", p.peek().Kind, p.peek().Text)
}

func (p *parser) parseCall() (ast.Expr, error) {
	name := p.next()
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	c := &ast.Call{Name: name.Text}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, a)
		if !p.accept(lexer.Comma) {
			break
		}
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	arity := ast.Intrinsics[c.Name]
	if arity >= 0 && len(c.Args) != arity {
		return nil, p.errorf("intrinsic %s takes %d argument(s), got %d", c.Name, arity, len(c.Args))
	}
	if arity == -1 && len(c.Args) < 2 {
		return nil, p.errorf("intrinsic %s takes at least 2 arguments", c.Name)
	}
	return c, nil
}

func (p *parser) parseRef() (*ast.Ref, error) {
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	r := &ast.Ref{Name: name.Text, Line: name.Line, Col: name.Col}
	if p.accept(lexer.LParen) {
		for {
			s, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Subs = append(r.Subs, s)
			if !p.accept(lexer.Comma) {
				break
			}
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
