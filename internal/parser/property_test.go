package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phpf/internal/ast"
)

// genExpr builds a random expression of bounded depth from a fixed variable
// pool.
func genExpr(r *rand.Rand, depth int) ast.Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &ast.IntConst{Value: int64(r.Intn(100))}
		case 1:
			return &ast.RealConst{Value: float64(r.Intn(1000)) / 8}
		case 2:
			return &ast.Ref{Name: []string{"x", "y", "z"}[r.Intn(3)]}
		default:
			return &ast.Ref{Name: "arr", Subs: []ast.Expr{genExpr(r, 0)}}
		}
	}
	switch r.Intn(6) {
	case 0, 1, 2:
		ops := []ast.Op{ast.Add, ast.Sub, ast.Mul, ast.Div}
		return &ast.BinOp{Op: ops[r.Intn(len(ops))],
			L: genExpr(r, depth-1), R: genExpr(r, depth-1)}
	case 3:
		return &ast.UnaryMinus{X: genExpr(r, depth-1)}
	case 4:
		return &ast.Call{Name: "abs", Args: []ast.Expr{genExpr(r, depth-1)}}
	default:
		return &ast.Call{Name: "max", Args: []ast.Expr{
			genExpr(r, depth-1), genExpr(r, depth-1)}}
	}
}

// TestExprPrintParseRoundTrip: printing a random expression and reparsing it
// yields an identical tree (modulo the canonical parenthesization the
// printer applies, which the second print pass fixes).
func TestExprPrintParseRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		printed := ast.ExprString(e)
		parsed, err := ParseExpr(printed)
		if err != nil {
			t.Logf("parse of %q failed: %v", printed, err)
			return false
		}
		return ast.ExprString(parsed) == printed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestProgramPrintParseFixedPoint: ast.Print is a fixed point through the
// parser for randomized straight-line programs.
func TestProgramPrintParseFixedPoint(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := &ast.Program{
			Name: "t",
			Decls: []*ast.VarDecl{
				{Name: "x", Type: ast.Real},
				{Name: "y", Type: ast.Real},
				{Name: "z", Type: ast.Real},
				{Name: "arr", Type: ast.Real, Dims: []ast.Expr{&ast.IntConst{Value: 100}}},
				{Name: "i", Type: ast.Integer},
			},
		}
		n := 1 + r.Intn(4)
		for k := 0; k < n; k++ {
			prog.Body = append(prog.Body, &ast.Assign{
				Lhs: &ast.Ref{Name: []string{"x", "y", "z"}[r.Intn(3)]},
				Rhs: genExpr(r, 3),
			})
		}
		printed := ast.Print(prog)
		reparsed, err := Parse(printed)
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, printed)
			return false
		}
		return ast.Print(reparsed) == printed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics: malformed inputs produce errors, not panics.
func TestParserNeverPanics(t *testing.T) {
	inputs := []string{
		"", "program", "program t", "program t\nend",
		"program t\ndo\nend\n", "program t\nif\nend\n",
		"program t\nx = = 1\nend\n",
		"program t\n!hpf$\nend\n",
		"program t\n!hpf$ align\nend\n",
		"program t\n!hpf$ distribute\nend\n",
		"program t\nreal a(\nend\n",
		"program t\nreal a(1,)\nend\n",
		"program t\ninteger i\ndo i = 1, 2\nend\n",
		"program t\nend do\nend\n",
		"program t\nelse\nend\n",
		"program t\n100\nend\n",
		"program t\ngoto\nend\n",
		"program t\nabs(1) = 2\nend\n",
		"program t\nx = max()\nend\n",
		"program t\nx = 1 +\nend\n",
		"program t\nx = (1\nend\n",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("panic on %q: %v", src, p)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
