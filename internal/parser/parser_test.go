package parser

import (
	"strings"
	"testing"

	"phpf/internal/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse error: %v\nsource:\n%s", err, src)
	}
	return p
}

const figure1Src = `
program figure1
parameter n = 100
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`

func TestParseFigure1(t *testing.T) {
	p := parseOK(t, figure1Src)
	if p.Name != "figure1" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Params) != 1 || p.Params[0].Name != "n" || p.Params[0].Value != 100 {
		t.Errorf("params = %+v", p.Params)
	}
	if len(p.Decls) != 11 {
		t.Errorf("got %d decls, want 11", len(p.Decls))
	}
	if len(p.Dirs) != 3 {
		t.Fatalf("got %d directives, want 3", len(p.Dirs))
	}
	al, ok := p.Dirs[0].(*ast.AlignDir)
	if !ok {
		t.Fatalf("dir 0 is %T, want AlignDir", p.Dirs[0])
	}
	if al.Target != "a" || len(al.Arrays) != 3 || al.Arrays[2] != "d" {
		t.Errorf("align dir = %+v", al)
	}
	al2 := p.Dirs[1].(*ast.AlignDir)
	if !al2.Subs[0].Star {
		t.Errorf("second align should target a(*), got %+v", al2.Subs)
	}
	dist, ok := p.Dirs[2].(*ast.DistributeDir)
	if !ok || dist.Formats[0].Kind != ast.DistBlock || dist.Arrays[0] != "a" {
		t.Errorf("distribute dir = %+v", p.Dirs[2])
	}
	if len(p.Body) != 2 {
		t.Fatalf("got %d body stmts, want 2 (m=2 and the do loop)", len(p.Body))
	}
	loop, ok := p.Body[1].(*ast.DoLoop)
	if !ok {
		t.Fatalf("body[1] is %T, want DoLoop", p.Body[1])
	}
	if loop.Var != "i" || len(loop.Body) != 6 {
		t.Errorf("loop var=%q body=%d stmts", loop.Var, len(loop.Body))
	}
}

func TestParseIndependentNew(t *testing.T) {
	src := `
program t
parameter n = 8
real c(n,n), r(n,n)
integer i, k
!hpf$ distribute (block,block) :: r
!hpf$ independent, new(c)
do k = 2, n-1
  c(k,1) = r(k,k)
end do
end
`
	p := parseOK(t, src)
	loop := p.Body[0].(*ast.DoLoop)
	if len(loop.Dirs) != 1 {
		t.Fatalf("got %d loop directives, want 1", len(loop.Dirs))
	}
	d := loop.Dirs[0]
	if !d.Independent || len(d.New) != 1 || d.New[0] != "c" {
		t.Errorf("loop directive = %+v", d)
	}
}

func TestParseNodeps(t *testing.T) {
	src := `
program t
real a(10)
real s
integer i
!hpf$ nodeps, new(s)
do i = 1, 10
  s = a(i)
  a(i) = s * 2.0
end do
end
`
	p := parseOK(t, src)
	loop := p.Body[0].(*ast.DoLoop)
	if !loop.Dirs[0].NoDeps || loop.Dirs[0].New[0] != "s" {
		t.Errorf("directive = %+v", loop.Dirs[0])
	}
}

func TestParseIfThenElseGoto(t *testing.T) {
	src := `
program f7
parameter n = 16
real a(n), b(n), c(n)
integer i
!hpf$ align (i) with a(i) :: b, c
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) /= 0.0) then
    a(i) = a(i) / b(i)
    if (b(i) < 0.0) goto 100
  else
    a(i) = c(i)
    c(i) = c(i) * c(i)
  end if
100 continue
end do
end
`
	p := parseOK(t, src)
	loop := p.Body[0].(*ast.DoLoop)
	iff, ok := loop.Body[0].(*ast.If)
	if !ok {
		t.Fatalf("loop.Body[0] is %T, want If", loop.Body[0])
	}
	if len(iff.Then) != 2 || len(iff.Else) != 2 {
		t.Errorf("then=%d else=%d stmts", len(iff.Then), len(iff.Else))
	}
	ig, ok := iff.Then[1].(*ast.IfGoto)
	if !ok || ig.Label != 100 {
		t.Errorf("then[1] = %#v", iff.Then[1])
	}
	cont, ok := loop.Body[1].(*ast.Continue)
	if !ok || cont.Label != 100 {
		t.Errorf("loop.Body[1] = %#v", loop.Body[1])
	}
}

func TestParseLogicalIfAssign(t *testing.T) {
	src := `
program t
real x, y
if (x > 0.0) y = x
end
`
	p := parseOK(t, src)
	iff, ok := p.Body[0].(*ast.If)
	if !ok || len(iff.Then) != 1 || len(iff.Else) != 0 {
		t.Fatalf("body[0] = %#v", p.Body[0])
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c - d / 2")
	if err != nil {
		t.Fatal(err)
	}
	got := ast.ExprString(e)
	want := "((a + (b * c)) - (d / 2))"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseExprRelationalAndLogical(t *testing.T) {
	e, err := ParseExpr("a < b and not c >= d or x == y")
	if err != nil {
		t.Fatal(err)
	}
	got := ast.ExprString(e)
	want := "(((a < b) and (not (c >= d))) or (x == y))"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseIntrinsics(t *testing.T) {
	e, err := ParseExpr("max(abs(a(i)), b, 1.0)")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*ast.Call)
	if !ok || c.Name != "max" || len(c.Args) != 3 {
		t.Fatalf("e = %#v", e)
	}
	if _, ok := c.Args[0].(*ast.Call); !ok {
		t.Errorf("args[0] = %#v, want Call(abs)", c.Args[0])
	}
}

func TestParseIntrinsicArityError(t *testing.T) {
	if _, err := ParseExpr("abs(a, b)"); err == nil {
		t.Error("expected arity error for abs(a,b)")
	}
	if _, err := ParseExpr("max(a)"); err == nil {
		t.Error("expected arity error for max(a)")
	}
}

func TestParseIntrinsicNameAsVariable(t *testing.T) {
	// An identifier matching an intrinsic name used without parentheses is a
	// plain variable.
	e, err := ParseExpr("abs + 1")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.BinOp)
	if r, ok := b.L.(*ast.Ref); !ok || r.Name != "abs" {
		t.Errorf("lhs = %#v", b.L)
	}
}

func TestParseDoStep(t *testing.T) {
	src := `
program t
integer i
real a(20)
do i = 1, 19, 2
  a(i) = 0.0
end do
end
`
	p := parseOK(t, src)
	loop := p.Body[0].(*ast.DoLoop)
	if loop.Step == nil {
		t.Fatal("step is nil")
	}
	if c, ok := loop.Step.(*ast.IntConst); !ok || c.Value != 2 {
		t.Errorf("step = %#v", loop.Step)
	}
}

func TestParseEnddoEndifSingleWord(t *testing.T) {
	src := "program t\ninteger i\nreal a(5)\ndo i = 1, 5\nif (a(i) > 0.0) then\na(i) = 0.0\nendif\nenddo\nend\n"
	parseOK(t, src)
}

func TestParseRedistribute(t *testing.T) {
	src := `
program t
real a(8,8)
!hpf$ distribute (block,*) :: a
!hpf$ redistribute a(*,block)
a(1,1) = 0.0
end
`
	p := parseOK(t, src)
	rd, ok := p.Body[0].(*ast.Redistribute)
	if !ok {
		t.Fatalf("body[0] = %T, want Redistribute", p.Body[0])
	}
	if rd.Array != "a" || rd.Formats[0].Kind != ast.DistNone || rd.Formats[1].Kind != ast.DistBlock {
		t.Errorf("redistribute = %+v", rd)
	}
}

func TestParseProcessors(t *testing.T) {
	src := `
program t
real a(8,8)
!hpf$ processors p(4,4)
!hpf$ distribute (block,block) :: a
a(1,1) = 0.0
end
`
	p := parseOK(t, src)
	pd, ok := p.Dirs[0].(*ast.ProcessorsDir)
	if !ok || pd.Name != "p" || len(pd.Extents) != 2 {
		t.Fatalf("dirs[0] = %#v", p.Dirs[0])
	}
}

func TestParseAlignColonForm(t *testing.T) {
	src := `
program t
real a(8), b(8), c(8)
!hpf$ align (:) with a(:) :: b, c
!hpf$ distribute (block) :: a
b(1) = 0.0
end
`
	p := parseOK(t, src)
	al := p.Dirs[0].(*ast.AlignDir)
	if al.Dummies[0] != ":" || al.Subs[0].Dummy != ":" {
		t.Errorf("align = %+v", al)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"program\nend\n",                              // missing name
		"program t\nx = \nend\n",                      // missing rhs
		"program t\ndo i = 1\nend do\nend\n",          // missing hi bound
		"program t\nif (x) then\nend\n",               // unterminated if (end consumed)
		"program t\n!hpf$ frobnicate\nend\n",          // unknown directive
		"program t\n!hpf$ independent\nx = 1\nend\n",  // independent without loop
		"program t\nend\nx = 1\n",                     // trailing junk
		"program t\ngoto x\nend\n",                    // bad goto target
		"program t\n!hpf$ align (i) with a(i)\nend\n", // align with no arrays
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for:\n%s", src)
		}
	}
}

func TestRoundTripThroughPrinter(t *testing.T) {
	p1 := parseOK(t, figure1Src)
	printed := ast.Print(p1)
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of printed program failed: %v\n%s", err, printed)
	}
	printed2 := ast.Print(p2)
	if printed != printed2 {
		t.Errorf("printer not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
	if !strings.Contains(printed, "do i = 2, (n - 1)") {
		t.Errorf("printed program missing loop header:\n%s", printed)
	}
}
