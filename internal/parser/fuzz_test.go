package parser

import (
	"errors"
	"testing"

	"phpf/internal/programs"
)

// FuzzParse asserts the parser's robustness contract on arbitrary input: it
// never panics, and every rejection is a position-bearing *diag.Diagnostic
// (line >= 1) from the lexer or parser, never a bare fmt error.
func FuzzParse(f *testing.F) {
	f.Add(programs.TOMCATV(17, 2))
	f.Add(programs.DGEFA(16))
	f.Add(programs.APPSP(6, 6, 6, 1, true))
	f.Add(programs.APPSP(6, 6, 6, 1, false))
	f.Add(programs.Smooth(64, 2))
	f.Add(programs.Histogram(64, 16, 2))
	f.Add(programs.DotSweep(16, 12))
	for _, src := range programs.Figures {
		f.Add(src)
	}
	f.Add("program t\n(((\nend\n")
	f.Add("program t\ndo i = 1, 10\nend\n")
	f.Add("!hpf$ align b(i) with a(i+1)\n")
	f.Add("program t\nif (x .gt. 0) goto 10\n10 continue\nend\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			var de *Error // == *lexer.Error == *diag.Diagnostic
			if !errors.As(err, &de) {
				t.Fatalf("parse error is not a positioned *diag.Diagnostic: %T %v", err, err)
			}
			if de.Pos.Line < 1 {
				t.Fatalf("front-end error with non-positive line: %v", de)
			}
			if de.Stage != "lex" && de.Stage != "parse" {
				t.Fatalf("front-end error with stage %q, want lex or parse: %v", de.Stage, de)
			}
			return
		}
		if p == nil {
			t.Fatal("nil program with nil error")
		}
	})
}
