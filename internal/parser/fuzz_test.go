package parser

import (
	"errors"
	"testing"

	"phpf/internal/lexer"
	"phpf/internal/programs"
)

// FuzzParse asserts the parser's robustness contract on arbitrary input: it
// never panics, and every rejection is a position-bearing *parser.Error or
// *lexer.Error (line >= 1), never a bare fmt error.
func FuzzParse(f *testing.F) {
	f.Add(programs.TOMCATV(17, 2))
	f.Add(programs.DGEFA(16))
	f.Add(programs.APPSP(6, 6, 6, 1, true))
	f.Add(programs.APPSP(6, 6, 6, 1, false))
	f.Add(programs.Smooth(64, 2))
	for _, src := range programs.Figures {
		f.Add(src)
	}
	f.Add("program t\n(((\nend\n")
	f.Add("program t\ndo i = 1, 10\nend\n")
	f.Add("!hpf$ align b(i) with a(i+1)\n")
	f.Add("program t\nif (x .gt. 0) goto 10\n10 continue\nend\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			var pe *Error
			var le *lexer.Error
			switch {
			case errors.As(err, &pe):
				if pe.Line < 1 {
					t.Fatalf("parser error with non-positive line: %v", pe)
				}
			case errors.As(err, &le):
				if le.Line < 1 {
					t.Fatalf("lexer error with non-positive line: %v", le)
				}
			default:
				t.Fatalf("parse error is neither *parser.Error nor *lexer.Error: %T %v", err, err)
			}
			return
		}
		if p == nil {
			t.Fatal("nil program with nil error")
		}
	})
}
