package phpf_test

// Serving benchmarks: the load half of the phpfserve robustness contract,
// run in-process over httptest so the regression gate sees real HTTP,
// admission control, and the compiled-program cache without needing a
// separate process. Custom metrics recorded into BENCH_<n>.json:
//
//	p50-ms / p99-ms   server-side service latency quantiles
//	hit-rate          cache lookups served without compiling (0..1)
//	shed-rate         fraction of requests answered 429 (0..1)
//
// BenchmarkServeThroughput drives parallel mixed figure×strategy traffic;
// BenchmarkServeLatency measures the cache-hot single-stream round trip.
// cmd/phpfload is the out-of-process equivalent for real deployments.

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"phpf/internal/serve"
)

// serveBenchBodies builds the mixed request set: the runnable figures plus
// the smooth kernel across the three optimization strategies on the
// simulator backend (deterministic work, no goroutine fan-out noise).
// figure2/figure4 are excluded: those paper fragments read uninitialized
// subscripts and fail at runtime by design (a 422, which would pollute a
// throughput benchmark meant to measure the success path).
func serveBenchBodies() [][]byte {
	var bodies [][]byte
	for _, fig := range []string{"figure1", "figure5", "figure6", "figure7", "smooth"} {
		for _, opt := range []string{"naive", "producer", "selected"} {
			bodies = append(bodies,
				[]byte(fmt.Sprintf(`{"figure":%q,"procs":4,"opt":%q,"backend":"sim"}`, fig, opt)))
		}
	}
	return bodies
}

func reportServeMetrics(b *testing.B, s *serve.Server, requests int64) {
	b.Helper()
	snap := s.Snapshot()
	if snap.Status5xx > 0 {
		b.Fatalf("%d requests answered 5xx under benchmark load", snap.Status5xx)
	}
	b.ReportMetric(snap.ServiceP50Ms, "p50-ms")
	b.ReportMetric(snap.ServiceP99Ms, "p99-ms")
	b.ReportMetric(snap.Cache.HitRate(), "hit-rate")
	if requests > 0 {
		b.ReportMetric(float64(snap.Shed)/float64(requests), "shed-rate")
	}
}

func BenchmarkServeThroughput(b *testing.B) {
	s := serve.New(serve.Config{MaxConcurrent: 64, PerTenant: 64, QueueDepth: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()
	bodies := serveBenchBodies()

	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := ts.Client()
		for pb.Next() {
			body := bodies[int(seq.Add(1))%len(bodies)]
			resp, err := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != 200 && resp.StatusCode != 429 {
				b.Errorf("status %d on a well-formed request", resp.StatusCode)
				return
			}
		}
	})
	b.StopTimer()
	reportServeMetrics(b, s, seq.Load())
}

func BenchmarkServeLatency(b *testing.B) {
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	body := []byte(`{"figure":"figure1","procs":4,"backend":"sim"}`)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	reportServeMetrics(b, s, int64(b.N))
}
