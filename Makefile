GO ?= go

.PHONY: check build vet test race fuzz bench

# Tier-1 gate: everything CI runs.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke of the front end (longer runs: raise FUZZTIME).
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run FuzzLex -fuzz FuzzLex -fuzztime $(FUZZTIME) ./internal/lexer
	$(GO) test -run FuzzParse -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/parser

bench:
	$(GO) test -bench=. -benchmem ./...
