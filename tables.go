package phpf

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Cell is one measurement in a reproduced table: a simulated execution time,
// possibly aborted at the configured limit (the paper's "> 1 day" entries).
type Cell struct {
	Seconds float64
	Aborted bool
	Stats   Stats
}

// String renders the cell like the paper's tables.
func (c Cell) String() string {
	if c.Aborted {
		return fmt.Sprintf("> %.2f (aborted)", c.Seconds)
	}
	return fmt.Sprintf("%.4f", c.Seconds)
}

// runCell compiles and simulates one configuration through the unified
// Backend API.
func runCell(source string, nprocs int, opts Options, run RunOptions) (Cell, error) {
	c, err := Compile(source, nprocs, opts)
	if err != nil {
		return Cell{}, err
	}
	rep, err := c.Execute(context.Background(), Simulator(), run)
	if err != nil {
		return Cell{}, err
	}
	return Cell{Seconds: rep.Time, Aborted: rep.Aborted, Stats: rep.Stats}, nil
}

// cellJob is one table cell to fill concurrently.
type cellJob struct {
	source string
	nprocs int
	opts   Options
	dst    *Cell
	// run, when non-nil, overrides the default run configuration built
	// from maxSeconds (fault sweeps set it).
	run *RunOptions
}

// runCells fills all cells concurrently — every cell is an independent
// compile+simulate pipeline, so the harness fans out across the host's
// cores. The first error wins.
func runCells(jobs []cellJob, maxSeconds float64) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, j := range jobs {
		wg.Add(1)
		go func(j cellJob) {
			defer wg.Done()
			run := RunOptions{MaxSeconds: maxSeconds}
			if j.run != nil {
				run = *j.run
			}
			cell, err := runCell(j.source, j.nprocs, j.opts, run)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			*j.dst = cell
		}(j)
	}
	wg.Wait()
	return firstErr
}

// ---------------------------------------------------------------------------
// Table 1 — TOMCATV under the three scalar-mapping compilers.

// Table1Row is one processor count's measurements.
type Table1Row struct {
	Procs       int
	Replication Cell
	Producer    Cell
	Selected    Cell
}

// TableConfig adjusts how the table builders run every cell: an optional
// privatization-mode override (phpfbench -privatize) and the runtime
// reduction strategy (phpfbench -reduce). The builders take it as a trailing
// variadic so callers that want the defaults pass nothing.
type TableConfig struct {
	// Priv, when non-nil, overrides the compile-time privatization mode;
	// otherwise each column keeps the ambient default (inference on).
	Priv *PrivMode
	// Reduce selects the runtime reduction strategy for every run
	// (ReduceAuto by default).
	Reduce ReduceMode
}

// tableCfg collapses the trailing variadic to one effective config.
func tableCfg(cfg []TableConfig) TableConfig {
	if len(cfg) > 0 {
		return cfg[0]
	}
	return TableConfig{}
}

// apply folds the config's compile-time override into one column's options.
func (tc TableConfig) apply(o Options) Options {
	if tc.Priv != nil {
		o.Privatization = *tc.Priv
	}
	return o
}

// runOpts builds the per-cell run configuration carrying the config's
// runtime knobs.
func (tc TableConfig) runOpts(maxSeconds float64) *RunOptions {
	return &RunOptions{MaxSeconds: maxSeconds, Reduce: tc.Reduce}
}

// Table1TOMCATV reproduces Table 1: TOMCATV execution time under
// replication, producer alignment, and selected alignment. maxSeconds
// bounds each simulated run (0 = unlimited); an optional TableConfig
// applies to every column (phpfbench -privatize / -reduce).
func Table1TOMCATV(n, niter int, procs []int, maxSeconds float64, cfg ...TableConfig) ([]Table1Row, error) {
	src := TOMCATVSource(n, niter)
	tc := tableCfg(cfg)
	run := tc.runOpts(maxSeconds)
	rows := make([]Table1Row, len(procs))
	var jobs []cellJob
	for i, p := range procs {
		rows[i].Procs = p
		jobs = append(jobs,
			cellJob{src, p, tc.apply(NaiveOptions()), &rows[i].Replication, run},
			cellJob{src, p, tc.apply(ProducerOptions()), &rows[i].Producer, run},
			cellJob{src, p, tc.apply(SelectedOptions()), &rows[i].Selected, run})
	}
	if err := runCells(jobs, maxSeconds); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable1 renders rows like the paper's Table 1.
func FormatTable1(n, niter int, rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. TOMCATV (n=%d, niter=%d) — execution time (s)\n", n, niter)
	fmt.Fprintf(&b, "%6s %18s %18s %18s\n", "#Procs", "Replication", "Producer Align", "Selected Align")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %18s %18s %18s\n", r.Procs,
			r.Replication.String(), r.Producer.String(), r.Selected.String())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 — DGEFA with and without reduction-variable alignment.

// Table2Row is one processor count's measurements.
type Table2Row struct {
	Procs   int
	Default Cell // reduction variables replicated
	Aligned Cell // §2.3 mapping
}

// Table2DGEFA reproduces Table 2. An optional TableConfig applies to both
// columns (phpfbench -privatize / -reduce).
func Table2DGEFA(n int, procs []int, maxSeconds float64, cfg ...TableConfig) ([]Table2Row, error) {
	src := DGEFASource(n)
	tc := tableCfg(cfg)
	run := tc.runOpts(maxSeconds)
	defOpts := SelectedOptions()
	defOpts.AlignReductions = false
	rows := make([]Table2Row, len(procs))
	var jobs []cellJob
	for i, p := range procs {
		rows[i].Procs = p
		jobs = append(jobs,
			cellJob{src, p, tc.apply(defOpts), &rows[i].Default, run},
			cellJob{src, p, tc.apply(SelectedOptions()), &rows[i].Aligned, run})
	}
	if err := runCells(jobs, maxSeconds); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(n int, rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. DGEFA (n=%d, (*,cyclic)) — execution time (s)\n", n)
	fmt.Fprintf(&b, "%6s %18s %18s\n", "#Procs", "Default", "Alignment")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %18s %18s\n", r.Procs, r.Default.String(), r.Aligned.String())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — APPSP under 1-D/2-D distributions with privatization toggles.

// Table3Row is one processor count's measurements.
type Table3Row struct {
	Procs         int
	OneDNoPriv    Cell // 1-D, array privatization disabled
	OneDPriv      Cell // 1-D, privatization (full)
	TwoDNoPartial Cell // 2-D, no partial privatization
	TwoDPartial   Cell // 2-D, partial privatization
}

// Table3APPSP reproduces Table 3. maxSeconds bounds each run; the no-priv
// configurations are expected to hit it (the paper aborted them after a
// day).
func Table3APPSP(nx, ny, nz, niter int, procs []int, maxSeconds float64, cfg ...TableConfig) ([]Table3Row, error) {
	src1 := APPSPSource(nx, ny, nz, niter, false)
	src2 := APPSPSource(nx, ny, nz, niter, true)
	tc := tableCfg(cfg)
	run := tc.runOpts(maxSeconds)
	noPriv := SelectedOptions()
	noPriv.PrivatizeArrays = false
	noPartial := SelectedOptions()
	noPartial.PartialPrivatization = false
	rows := make([]Table3Row, len(procs))
	var jobs []cellJob
	for i, p := range procs {
		rows[i].Procs = p
		jobs = append(jobs,
			cellJob{src1, p, tc.apply(noPriv), &rows[i].OneDNoPriv, run},
			cellJob{src1, p, tc.apply(SelectedOptions()), &rows[i].OneDPriv, run},
			cellJob{src2, p, tc.apply(noPartial), &rows[i].TwoDNoPartial, run},
			cellJob{src2, p, tc.apply(SelectedOptions()), &rows[i].TwoDPartial, run})
	}
	if err := runCells(jobs, maxSeconds); err != nil {
		return nil, err
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fault sweep — execution time and retransmissions under message loss.

// FaultSweepRow is one strategy's measurements across the loss rates.
type FaultSweepRow struct {
	Strategy string
	Cells    []Cell // one per loss rate, in the sweep's order
}

// FaultSweep measures one program under the three scalar-mapping strategies
// (replication / producer alignment / selected alignment) across a set of
// message-loss rates, all driven by the same deterministic seed. The zero
// rate reproduces the fault-free run exactly.
func FaultSweep(source string, nprocs int, lossRates []float64, seed int64, maxSeconds float64) ([]FaultSweepRow, error) {
	strategies := []struct {
		name string
		opts Options
	}{
		{"replication", NaiveOptions()},
		{"producer", ProducerOptions()},
		{"selected", SelectedOptions()},
	}
	rows := make([]FaultSweepRow, len(strategies))
	var jobs []cellJob
	for i, s := range strategies {
		rows[i].Strategy = s.name
		rows[i].Cells = make([]Cell, len(lossRates))
		for k, rate := range lossRates {
			run := &RunOptions{MaxSeconds: maxSeconds}
			if rate > 0 {
				run.Fault = &FaultPlan{Seed: seed, LossRate: rate}
			}
			jobs = append(jobs, cellJob{source, nprocs, s.opts, &rows[i].Cells[k], run})
		}
	}
	if err := runCells(jobs, maxSeconds); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFaultSweep renders a fault sweep: strategies down, loss rates across,
// each cell showing time and retransmission count.
func FormatFaultSweep(title string, lossRates []float64, rows []FaultSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — execution time (s) / retransmits under message loss\n", title)
	fmt.Fprintf(&b, "%-12s", "strategy")
	for _, r := range lossRates {
		fmt.Fprintf(&b, " %16s", fmt.Sprintf("loss=%g", r))
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s", row.Strategy)
		for _, c := range row.Cells {
			cell := fmt.Sprintf("%.4f/%d", c.Seconds, c.Stats.Retransmits)
			if c.Aborted {
				cell = "aborted"
			}
			fmt.Fprintf(&b, " %16s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable3 renders rows like the paper's Table 3.
func FormatTable3(nx, ny, nz, niter int, rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. APPSP (%dx%dx%d, niter=%d) — execution time (s)\n", nx, ny, nz, niter)
	fmt.Fprintf(&b, "%6s %20s %20s %20s %20s\n", "#Procs",
		"1-D, No Array Priv", "1-D, Priv", "2-D, No Partial", "2-D, Partial")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %20s %20s %20s %20s\n", r.Procs,
			r.OneDNoPriv.String(), r.OneDPriv.String(),
			r.TwoDNoPartial.String(), r.TwoDPartial.String())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Reduce sweep — collective vs privatized commutative updates.

// ReduceSweepRow is one reduce-heavy kernel at one processor count, measured
// under both runtime reduction strategies on the same compiled program.
type ReduceSweepRow struct {
	Program    string
	Procs      int
	Collective Cell // every contribution routed to the owner per instance
	Privatized Cell // local partials, one deterministic tree merge at exit
}

// Speedup is the collective time over the privatized time.
func (r ReduceSweepRow) Speedup() float64 {
	if r.Privatized.Seconds == 0 {
		return 0
	}
	return r.Collective.Seconds / r.Privatized.Seconds
}

// ReduceSweep measures every program under ReduceCollective and
// ReducePrivatize at every processor count: the O(iterations) per-instance
// collectives of the owner-computes reference against the O(log P) merge
// hops of the privatized runtime. maxSeconds bounds each run (0 =
// unlimited). phpfbench -reduce-sweep prints it.
func ReduceSweep(progs []DiffProgram, procs []int, maxSeconds float64) ([]ReduceSweepRow, error) {
	rows := make([]ReduceSweepRow, len(progs)*len(procs))
	var jobs []cellJob
	for i, p := range progs {
		for k, np := range procs {
			r := &rows[i*len(procs)+k]
			r.Program, r.Procs = p.Name, np
			jobs = append(jobs,
				cellJob{p.Source, np, SelectedOptions(), &r.Collective,
					&RunOptions{MaxSeconds: maxSeconds, Reduce: ReduceCollective}},
				cellJob{p.Source, np, SelectedOptions(), &r.Privatized,
					&RunOptions{MaxSeconds: maxSeconds, Reduce: ReducePrivatize}})
		}
	}
	if err := runCells(jobs, maxSeconds); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatReduceSweep renders the reduce sweep: per kernel and processor
// count, the simulated time and modeled message count of each strategy, the
// privatized runtime's tree merges, and the speedup.
func FormatReduceSweep(rows []ReduceSweepRow) string {
	var b strings.Builder
	b.WriteString("Reduce sweep — collective vs privatized commutative updates (simulated time)\n")
	fmt.Fprintf(&b, "%-28s %6s %14s %9s %14s %9s %7s %8s\n",
		"program", "#Procs", "collective(s)", "msgs", "privatized(s)", "msgs", "merges", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %6d %14s %9d %14s %9d %7d %7.1fx\n",
			r.Program, r.Procs,
			r.Collective.String(), r.Collective.Stats.Messages,
			r.Privatized.String(), r.Privatized.Stats.Messages,
			r.Privatized.Stats.Merges, r.Speedup())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Differential oracle sweep — concurrent executor vs sequential simulator.

// DiffProgram names one source program for a differential sweep.
type DiffProgram struct {
	Name   string
	Source string
}

// DiffSweepRow is one differential-oracle verdict: a program compiled under
// one mapping strategy for one processor count, executed by both backends.
type DiffSweepRow struct {
	Program  string
	Strategy string
	Procs    int
	// TrafficMessages counts the concurrent backend's real channel messages.
	TrafficMessages int64
	// Mismatches is empty when the backends agreed bit-for-bit.
	Mismatches []string
}

// Match reports whether the backends agreed.
func (r DiffSweepRow) Match() bool { return len(r.Mismatches) == 0 }

// DiffSweep runs the differential oracle over every program, every mapping
// strategy of Table 1, and every processor count: the concurrent executor's
// numeric results and communication statistics must equal the sequential
// simulator's. The rows report each configuration's verdict; an error means
// a backend failed to run at all.
func DiffSweep(ctx context.Context, progs []DiffProgram, procs []int) ([]DiffSweepRow, error) {
	strategies := []struct {
		name string
		opts Options
	}{
		{"naive", NaiveOptions()},
		{"producer", ProducerOptions()},
		{"selected", SelectedOptions()},
	}
	var rows []DiffSweepRow
	for _, p := range progs {
		for _, s := range strategies {
			for _, np := range procs {
				c, err := Compile(p.Source, np, s.opts)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/p%d: %w", p.Name, s.name, np, err)
				}
				rep, err := c.Diff(ctx, RunOptions{})
				if err != nil {
					return nil, fmt.Errorf("%s/%s/p%d: %w", p.Name, s.name, np, err)
				}
				rows = append(rows, DiffSweepRow{
					Program:         p.Name,
					Strategy:        s.name,
					Procs:           np,
					TrafficMessages: rep.Exec.TrafficMessages,
					Mismatches:      rep.Mismatches,
				})
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Chaos sweep — both backends under the same seeded physical faults.

// ChaosPlan names one seeded fault scenario for the chaos sweep. Crash times
// and the checkpoint interval are given as fractions of the program's clean
// simulated time, so the same plan places a mid-loop crash sensibly across
// benchmarks of very different scales.
type ChaosPlan struct {
	Name     string
	Seed     int64
	LossRate float64
	DupRate  float64
	// CrashProc fail-stops at CrashFrac of the clean simulated time when
	// CrashFrac > 0.
	CrashProc int
	CrashFrac float64
	// CheckpointFrac > 0 checkpoints every so many clean-time fractions.
	CheckpointFrac float64
}

// DefaultChaosPlans is the seeded scenario matrix the chaos sweep (and the
// CI chaos gate) runs: message loss, duplication, coordinated checkpointing,
// a mid-loop fail-stop recovered from checkpoint, and all of it combined.
func DefaultChaosPlans() []ChaosPlan {
	return []ChaosPlan{
		{Name: "loss", Seed: 7, LossRate: 0.05},
		{Name: "dup", Seed: 3, DupRate: 0.05},
		{Name: "checkpoint", CheckpointFrac: 0.2},
		{Name: "crash", Seed: 5, CrashProc: 1, CrashFrac: 0.4, CheckpointFrac: 0.2},
		{Name: "mixed", Seed: 11, LossRate: 0.02, DupRate: 0.02, CrashProc: 2, CrashFrac: 0.6, CheckpointFrac: 0.2},
	}
}

// ChaosSweepRow is one program under one seeded fault plan, executed by both
// backends through the differential oracle.
type ChaosSweepRow struct {
	Program string
	Plan    string
	Procs   int
	// CleanSeconds is the fault-free simulated time; Seconds the simulated
	// time under the plan (both backends agreed on it when Match is true).
	CleanSeconds float64
	Seconds      float64
	// Overhead is Seconds/CleanSeconds - 1: the modeled cost of the faults
	// plus the recovery protocol.
	Overhead float64
	// Restarts counts coordinated checkpoint restorations; the Wire fields
	// count the physical faults the concurrent backend actually injected.
	Restarts        int64
	Checkpoints     int64
	WireDrops       int64
	WireDuplicates  int64
	WireRetransmits int64
	// Mismatches is empty when the backends agreed bit-for-bit.
	Mismatches []string
}

// Match reports whether the backends agreed.
func (r ChaosSweepRow) Match() bool { return len(r.Mismatches) == 0 }

// ChaosSweep measures every program under every chaos plan: a clean
// simulator run fixes the time scale, then the differential oracle executes
// the seeded plan on both backends — real dropped transmissions,
// retransmit/backoff, and checkpoint/restart on the concurrent side — and
// demands bitwise agreement on results, statistics, and fault-event counts.
func ChaosSweep(ctx context.Context, progs []DiffProgram, nprocs int, plans []ChaosPlan) ([]ChaosSweepRow, error) {
	var rows []ChaosSweepRow
	for _, p := range progs {
		c, err := Compile(p.Source, nprocs, SelectedOptions())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		clean, err := c.Execute(ctx, Simulator(), RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s: clean run: %w", p.Name, err)
		}
		for _, plan := range plans {
			opts := RunOptions{CheckpointInterval: plan.CheckpointFrac * clean.Time}
			fp := &FaultPlan{Seed: plan.Seed, LossRate: plan.LossRate, DupRate: plan.DupRate}
			if plan.CrashFrac > 0 {
				fp.Crashes = []Crash{{Proc: plan.CrashProc, At: plan.CrashFrac * clean.Time}}
			}
			if fp.Active() {
				opts.Fault = fp
			}
			rep, err := c.Diff(ctx, opts)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.Name, plan.Name, err)
			}
			rows = append(rows, ChaosSweepRow{
				Program:         p.Name,
				Plan:            plan.Name,
				Procs:           nprocs,
				CleanSeconds:    clean.Time,
				Seconds:         rep.Sim.Time,
				Overhead:        rep.Sim.Time/clean.Time - 1,
				Restarts:        rep.Exec.Restarts,
				Checkpoints:     rep.Sim.Stats.Checkpoints,
				WireDrops:       rep.Exec.WireDrops,
				WireDuplicates:  rep.Exec.WireDuplicates,
				WireRetransmits: rep.Exec.WireRetransmits,
				Mismatches:      rep.Mismatches,
			})
		}
	}
	return rows, nil
}

// FormatChaosSweep renders the chaos sweep: per program and plan, the
// modeled recovery overhead next to the physical fault activity, with the
// oracle's verdict on each row.
func FormatChaosSweep(rows []ChaosSweepRow) string {
	var b strings.Builder
	b.WriteString("Chaos sweep — seeded faults on both backends (oracle-checked)\n")
	fmt.Fprintf(&b, "%-24s %-11s %10s %10s %9s %8s %6s %6s %7s  verdict\n",
		"program", "plan", "clean(s)", "faulted(s)", "overhead", "restarts", "ckpts", "drops", "retrans")
	for _, r := range rows {
		verdict := "match"
		if !r.Match() {
			verdict = fmt.Sprintf("MISMATCH (%d)", len(r.Mismatches))
		}
		fmt.Fprintf(&b, "%-24s %-11s %10.6f %10.6f %8.1f%% %8d %6d %6d %7d  %s\n",
			r.Program, r.Plan, r.CleanSeconds, r.Seconds, 100*r.Overhead,
			r.Restarts, r.Checkpoints, r.WireDrops, r.WireRetransmits, verdict)
		for _, m := range r.Mismatches {
			fmt.Fprintf(&b, "    %s\n", m)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Trace sweep — the communication matrix of every sweep point.

// TracePoint is one traced sweep point: a program compiled under one mapping
// strategy for one processor count, simulated with event tracing on.
type TracePoint struct {
	Program  string
	Strategy string
	Procs    int
	Cell     Cell
	// Trace carries the exact derived metrics of the run — the P×P
	// communication matrix, per-class totals, per-statement histograms.
	Trace *TraceRecorder
}

// TraceSweep simulates every program under every mapping strategy of Table 1
// at every processor count, with runtime tracing enabled, and returns one
// traced point per configuration. maxSeconds bounds each run (0 = unlimited).
func TraceSweep(ctx context.Context, progs []DiffProgram, procs []int, maxSeconds float64) ([]TracePoint, error) {
	strategies := []struct {
		name string
		opts Options
	}{
		{"naive", NaiveOptions()},
		{"producer", ProducerOptions()},
		{"selected", SelectedOptions()},
	}
	var points []TracePoint
	for _, p := range progs {
		for _, s := range strategies {
			for _, np := range procs {
				c, err := Compile(p.Source, np, s.opts)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/p%d: %w", p.Name, s.name, np, err)
				}
				rep, err := c.Execute(ctx, Simulator(), RunOptions{
					MaxSeconds: maxSeconds,
					Trace:      &TraceOptions{},
				})
				if err != nil {
					return nil, fmt.Errorf("%s/%s/p%d: %w", p.Name, s.name, np, err)
				}
				points = append(points, TracePoint{
					Program:  p.Name,
					Strategy: s.name,
					Procs:    np,
					Cell:     Cell{Seconds: rep.Time, Aborted: rep.Aborted, Stats: rep.Stats},
					Trace:    rep.Trace,
				})
			}
		}
	}
	return points, nil
}

// FormatTraceSweep renders each sweep point's communication matrix (rows =
// sender, columns = receiver) with its simulated time and message totals.
func FormatTraceSweep(points []TracePoint) string {
	var b strings.Builder
	b.WriteString("Trace sweep — planned communication matrix per sweep point\n")
	for _, pt := range points {
		m := pt.Trace.CommMatrix()
		t := m.Total()
		fmt.Fprintf(&b, "\n%s / %s / p=%d — time %s, %d msgs, %d bytes\n",
			pt.Program, pt.Strategy, pt.Procs, pt.Cell.String(), t.Msgs, t.Bytes)
		b.WriteString(m.String())
	}
	return b.String()
}

// FormatDiffSweep renders the sweep as a verdict matrix.
func FormatDiffSweep(rows []DiffSweepRow) string {
	var b strings.Builder
	b.WriteString("Differential oracle — concurrent executor vs sequential simulator\n")
	fmt.Fprintf(&b, "%-28s %-10s %6s %10s  verdict\n", "program", "strategy", "procs", "traffic")
	for _, r := range rows {
		verdict := "match"
		if !r.Match() {
			verdict = fmt.Sprintf("MISMATCH (%d)", len(r.Mismatches))
		}
		fmt.Fprintf(&b, "%-28s %-10s %6d %10d  %s\n",
			r.Program, r.Strategy, r.Procs, r.TrafficMessages, verdict)
		for _, m := range r.Mismatches {
			fmt.Fprintf(&b, "    %s\n", m)
		}
	}
	return b.String()
}
