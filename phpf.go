// Package phpf reproduces the compiler framework of Gupta, "On
// Privatization of Variables for Data-Parallel Execution" (IPPS 1997): an
// HPF-like mini-language, the privatization and mapping analyses of the phpf
// prototype compiler (scalar alignment selection, reduction mapping, full
// and partial array privatization, control-flow privatization), SPMD code
// generation under the owner-computes rule with message vectorization, and
// two execution backends behind one Backend interface — a deterministic IBM
// SP2-style machine simulator and a concurrent goroutine-per-processor
// executor — with a shared runtime observability layer (event tracing and
// communication metrics, see internal/trace).
//
// Typical use:
//
//	c, err := phpf.Compile(source, 16, phpf.SelectedOptions())
//	rep, err := c.Execute(ctx, phpf.Simulator(), phpf.RunOptions{})
//	fmt.Println(rep.Time, rep.Stats)
package phpf

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"phpf/internal/core"
	"phpf/internal/diag"
	"phpf/internal/dist"
	"phpf/internal/exec"
	"phpf/internal/fault"
	"phpf/internal/ir"
	"phpf/internal/machine"
	"phpf/internal/parser"
	"phpf/internal/pass"
	"phpf/internal/programs"
	"phpf/internal/sim"
	"phpf/internal/spmd"
	"phpf/internal/trace"
)

// Re-exported option types: one import suffices for the whole API.
type (
	// Options selects which of the paper's optimizations the compiler
	// applies (see core.Options).
	Options = core.Options
	// ScalarStrategy is the scalar-mapping level of Table 1.
	ScalarStrategy = core.ScalarStrategy
	// MachineParams are the simulated machine's cost parameters.
	MachineParams = machine.Params
	// Stats aggregates simulated communication activity.
	Stats = machine.Stats
	// Diagnostic is a positioned, coded compiler diagnostic (see
	// internal/diag.Diagnostic); every stage reports problems this way.
	Diagnostic = core.Diagnostic
	// Severity grades a Diagnostic (info, warning, error).
	Severity = diag.Severity
	// CompileProfile is the per-pass instrumentation of a compilation (see
	// pass.CompileProfile); phpfc -trace prints it.
	CompileProfile = pass.CompileProfile
	// PassStat is one pass execution in a CompileProfile.
	PassStat = pass.PassStat
	// FaultPlan is a deterministic fault-injection schedule (see
	// fault.Plan).
	FaultPlan = fault.Plan
	// Crash is a fail-stop processor crash at a simulated time.
	Crash = fault.Crash
	// Slowdown is a transient per-processor compute slowdown.
	Slowdown = fault.Slowdown
	// TraceOptions configures runtime event tracing (see trace.Options):
	// ring capacity and 1-in-N sampling. The derived counters stay exact
	// regardless.
	TraceOptions = trace.Options
	// TraceRecorder is the recorded event stream of one run plus its exact
	// derived metrics (per-class totals, the P×P communication matrix,
	// per-statement histograms, Chrome trace_event export).
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded runtime event.
	TraceEvent = trace.Event
	// TraceCommMatrix is the P×P planned-communication matrix snapshot.
	TraceCommMatrix = trace.CommMatrix
	// StmtProfile is one statement's share of simulated activity (the
	// hot-statement view, see Report.HotStatements).
	StmtProfile = sim.StmtProfile
)

// Diagnostic severities.
const (
	SeverityInfo    = diag.Info
	SeverityWarning = diag.Warning
	SeverityError   = diag.Error
)

// ParseCrashes parses a CLI crash list "proc@time,proc@time".
func ParseCrashes(s string) ([]Crash, error) { return fault.ParseCrashes(s) }

// ParseSlowdowns parses a CLI slowdown list
// "proc:factor[:start[:duration]],...".
func ParseSlowdowns(s string) ([]Slowdown, error) { return fault.ParseSlowdowns(s) }

// Scalar strategies (Table 1 columns).
const (
	ScalarsReplicated      = core.ScalarsReplicated
	ScalarsProducerAligned = core.ScalarsProducerAligned
	ScalarsSelected        = core.ScalarsSelected
)

// PrivMode selects where privatization facts come from (see core.PrivMode):
// directives only, inference alongside directives (the default), or
// inference alone with directives ignored.
type PrivMode = core.PrivMode

// Privatization modes.
const (
	PrivDirectives  = core.PrivDirectives
	PrivInfer       = core.PrivInfer
	PrivInferStrict = core.PrivInferStrict
)

// ParsePrivMode parses a CLI/API privatization-mode name: "directives",
// "infer", or "infer-strict".
func ParsePrivMode(s string) (PrivMode, bool) { return core.ParsePrivMode(s) }

// ReduceMode selects the runtime reduction strategy (see core.ReduceMode):
// the §2.3 collective combine, per-processor privatized partials merged in a
// deterministic tree at loop exit, or the automatic choice driven by the
// reduceplan analysis.
type ReduceMode = core.ReduceMode

// Reduction strategies.
const (
	// ReduceAuto privatizes every reduction the reduceplan analysis cleared
	// and leaves the rest collective (the default).
	ReduceAuto = core.ReduceAuto
	// ReduceCollective runs every reduction through the log-P combining
	// collective — the differential reference strategy.
	ReduceCollective = core.ReduceCollective
	// ReducePrivatize demands privatization: any recognized reduction the
	// analysis could not clear fails the run with a coded E005 diagnostic.
	ReducePrivatize = core.ReducePrivatize
)

// ParseReduceMode parses a CLI/API reduce-mode name: "auto", "collective",
// or "privatize".
func ParseReduceMode(s string) (ReduceMode, bool) { return core.ParseReduceMode(s) }

// SelectedOptions is the full compiler of §2.2–§4 (Table 1 "Selected
// Alignment", Table 2 "Alignment", Table 3 privatization columns).
func SelectedOptions() Options { return core.DefaultOptions() }

// ProducerOptions is the Table 1 middle column: privatization with
// producer-only alignment.
func ProducerOptions() Options {
	o := core.DefaultOptions()
	o.Scalars = ScalarsProducerAligned
	return o
}

// NaiveOptions is the Table 1 first column: no privatization — every scalar
// replicated, reduction variables included.
func NaiveOptions() Options {
	o := core.DefaultOptions()
	o.Scalars = ScalarsReplicated
	o.AlignReductions = false
	return o
}

// SP2Params returns the default machine parameters (IBM SP2 thin nodes).
func SP2Params() MachineParams { return machine.SP2() }

// Compiled is a fully analyzed program ready to simulate.
type Compiled struct {
	Source string
	NProcs int
	Opts   Options

	Result *core.Result
	SPMD   *spmd.Program
}

// CacheKey returns a stable content hash identifying a compilation input
// plus the reduction strategy it will run under: two calls with the same
// source text, processor count, option set, and reduce mode return the same
// key, and any difference in them changes it. Serving layers key
// compiled-program caches on it (compile once, serve many); because the key
// covers the full input, a hit can reuse the Compiled without revalidation.
// The reduce mode is part of the key even though one Compiled can execute
// under any strategy: serving paths attach per-entry execution defaults to
// cache entries, so entries for different strategies must not collide.
func CacheKey(source string, nprocs int, opts Options, reduce ReduceMode) string {
	h := sha256.New()
	// The version tag invalidates every cached key when the encoding (or
	// the meaning of an option) changes incompatibly.
	fmt.Fprintf(h, "phpf-cache-v3\x00procs=%d\x00opts=%+v\x00reduce=%s\x00", nprocs, opts, reduce)
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// Compile parses, analyzes and lowers a mini-HPF program for nprocs
// processors.
func Compile(source string, nprocs int, opts Options) (*Compiled, error) {
	ap, err := parser.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("phpf: %w", err)
	}
	res, err := core.BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		return nil, fmt.Errorf("phpf: %w", err)
	}
	start := time.Now()
	sp := spmd.Generate(res)
	// SPMD generation runs outside the pass manager; time it the same way so
	// -trace accounts for the whole compilation.
	res.Profile.Stats = append(res.Profile.Stats, pass.PassStat{
		Name:  "spmd",
		Wall:  time.Since(start),
		Diags: len(sp.Diags),
	})
	return &Compiled{
		Source: source,
		NProcs: nprocs,
		Opts:   opts,
		Result: res,
		SPMD:   sp,
	}, nil
}

// ---------------------------------------------------------------------------
// The unified execution API: RunOptions → Backend → Report

// RunOptions configures one execution on either backend — the merger of the
// former RunConfig (simulator) and ExecConfig (concurrent executor). Fields
// a backend does not support are rejected with a coded E005 diagnostic, not
// silently ignored.
type RunOptions struct {
	// Params are the machine cost parameters (SP2Params() when zero); both
	// backends use them — the simulator to advance its clocks, the
	// concurrent executor for its deterministic statistics replay.
	Params MachineParams

	// MaxSeconds aborts once simulated time exceeds it (0 = unlimited) —
	// the paper's "> 1 day (aborted)" entries. Simulator only: the
	// concurrent backend bounds wall time via the context deadline instead.
	MaxSeconds float64
	// Profile collects the per-statement hot-statement view
	// (Report.HotStatements). Simulator only.
	Profile bool
	// Fault, when non-nil and active, injects deterministic faults
	// (message loss/duplication, slowdowns, crashes). Both backends take
	// the same seeded plan: the simulator charges modeled costs, the
	// concurrent executor additionally makes message faults physical —
	// real dropped/duplicated/delayed transmissions healed by seeded
	// retransmission — while replaying the identical modeled accounting.
	Fault *FaultPlan
	// CheckpointInterval enables coordinated checkpointing every so many
	// simulated seconds (0 = off). Both backends checkpoint at the same
	// hoisted-communication boundaries; the concurrent executor takes real
	// barrier-aligned snapshots it can restart from after a crash.
	CheckpointInterval float64

	// Reduce selects the runtime reduction strategy, identically on both
	// backends: ReduceAuto (the default) privatizes every reduction the
	// reduceplan analysis cleared, ReduceCollective forces the §2.3
	// combining collective everywhere, and ReducePrivatize additionally
	// fails with a coded E005 diagnostic if any recognized reduction is
	// collective-only. Runs under different strategies reassociate floating
	// point differently; integer-valued reductions agree across strategies.
	Reduce ReduceMode

	// Workers is the concurrent backend's worker count (0 = the program's
	// processor count; any other value but the processor count itself is
	// rejected). Concurrent only.
	Workers int
	// MailboxDepth bounds each directed mailbox (0 = default). Concurrent
	// only.
	MailboxDepth int
	// StallTimeout is the concurrent backend's watchdog quiet period
	// (0 = default, negative = disabled). Concurrent only.
	StallTimeout time.Duration
	// MaxRestarts bounds the concurrent backend's run-level heals after a
	// worker death or stall (0 = default, negative = disabled). Concurrent
	// only.
	MaxRestarts int
	// HardCrashes makes scheduled fail-stop crashes kill worker goroutines
	// for real (recovery then goes through the run-level heal) instead of
	// the default coordinated restore. Concurrent only.
	HardCrashes bool

	// Trace, when non-nil, records runtime events into Report.Trace: the
	// simulator stamps simulated time, the concurrent executor wall time.
	// Nil keeps the event path of both backends emission- and
	// allocation-free.
	Trace *TraceOptions

	// MaxCells caps the total array cells of one memory image (0 =
	// unlimited). Both backends enforce it before allocating: the run fails
	// with a coded E006 (budget) diagnostic instead of letting one huge
	// declaration exhaust process memory. The concurrent backend holds one
	// full replicated image per worker, so its worst-case footprint is
	// MaxCells × 8 bytes × workers. CLIs default to unlimited; serving
	// paths should always set it.
	MaxCells int64
}

// Validate sanity-checks the options against zero/negative/absurd values
// without knowing the target backend: non-finite or negative time bounds and
// intervals, invalid machine parameters (a zero Params means SP2Params() and
// is accepted), malformed fault plans, and negative resource budgets all
// return a coded E005 diagnostic. Backends re-validate what they consume;
// this is the early, backend-independent gate serving paths run before
// admitting a request.
func (o RunOptions) Validate() error {
	bad := func(format string, args ...any) error { return configErr("options", format, args...) }
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MaxSeconds", o.MaxSeconds},
		{"CheckpointInterval", o.CheckpointInterval},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return bad("%s must be finite, got %v", f.name, f.v)
		}
		if f.v < 0 {
			return bad("%s must be >= 0, got %v", f.name, f.v)
		}
	}
	if o.Params != (MachineParams{}) {
		if err := o.Params.Validate(); err != nil {
			return bad("%v", err)
		}
	}
	if err := o.Fault.Validate(); err != nil {
		return bad("%v", err)
	}
	if o.Workers < 0 {
		return bad("Workers must be >= 0 (0 = one per processor), got %d", o.Workers)
	}
	if o.MailboxDepth < 0 {
		return bad("MailboxDepth must be >= 0 (0 = default), got %d", o.MailboxDepth)
	}
	if o.MaxCells < 0 {
		return bad("MaxCells must be >= 0 (0 = unlimited), got %d", o.MaxCells)
	}
	if o.Reduce < ReduceAuto || o.Reduce > ReducePrivatize {
		return bad("Reduce must be ReduceAuto, ReduceCollective, or ReducePrivatize, got %d", int(o.Reduce))
	}
	return nil
}

// Report is the backend-independent outcome of one execution.
type Report struct {
	// Backend names the backend that produced the report ("sim" or
	// "concurrent").
	Backend string
	// Time is the simulated execution time (the concurrent backend reports
	// its deterministic cost-model replay, identical to the simulator's).
	Time float64
	// Stats aggregates the modeled communication activity.
	Stats Stats
	// Aborted reports a MaxSeconds cutoff (simulator only).
	Aborted bool

	// Final memory, for validation against reference implementations.
	Scalars map[string]float64
	Arrays  map[string][]float64

	// HotStatements is the per-statement time attribution, sorted hottest
	// first (simulator with Profile on; nil otherwise).
	HotStatements []StmtProfile

	// Workers is the number of worker goroutines that ran (concurrent
	// backend; 0 from the simulator).
	Workers int
	// TrafficMessages counts real channel messages exchanged (concurrent
	// backend; 0 from the simulator).
	TrafficMessages int64
	// Restarts counts the concurrent backend's coordinated checkpoint
	// restores; HardRestarts its run-level heals (both 0 from the
	// simulator, whose recovery is purely modeled).
	Restarts     int64
	HardRestarts int
	// Wire-layer fault activity of the concurrent backend: real
	// transmissions dropped, retransmitted after timeout, duplicated, and
	// duplicate-suppressed at the receiver (all 0 from the simulator).
	WireDrops         int64
	WireRetransmits   int64
	WireDuplicates    int64
	WireDupSuppressed int64

	// Trace is the recorded event stream when RunOptions.Trace was set
	// (nil otherwise).
	Trace *TraceRecorder
}

// Backend is one way of executing a compiled SPMD program. Both built-in
// backends — Simulator() and Concurrent() — implement it, so tools and tests
// can be written once against the interface; a trace recorder plugs into any
// backend the same way (RunOptions.Trace).
type Backend interface {
	// Name identifies the backend ("sim", "concurrent").
	Name() string
	// Run executes the program. Cancellation or deadline on ctx aborts the
	// run: the simulator checks between events (iteration and communication
	// boundaries), the concurrent executor unwinds every worker.
	Run(ctx context.Context, p *spmd.Program, opts RunOptions) (*Report, error)
}

// Simulator returns the sequential simulated-machine backend.
func Simulator() Backend { return simulatorBackend{} }

// Concurrent returns the concurrent goroutine-per-processor backend.
func Concurrent() Backend { return concurrentBackend{} }

// Backends lists the built-in backend names, in presentation order.
func Backends() []string { return []string{"sim", "concurrent"} }

// BackendByName resolves a backend name ("sim", "concurrent").
func BackendByName(name string) (Backend, bool) {
	switch name {
	case "sim":
		return Simulator(), true
	case "concurrent":
		return Concurrent(), true
	}
	return nil, false
}

// Execute runs the compiled program on the given backend.
func (c *Compiled) Execute(ctx context.Context, b Backend, opts RunOptions) (*Report, error) {
	return b.Run(ctx, c.SPMD, opts)
}

// configErr builds the coded E005 diagnostic for an invalid run
// configuration.
func configErr(backend, format string, args ...any) error {
	return diag.Errorf(backend, diag.CodeConfig, diag.Pos{}, format, args...)
}

type simulatorBackend struct{}

func (simulatorBackend) Name() string { return "sim" }

func (simulatorBackend) Run(ctx context.Context, p *spmd.Program, opts RunOptions) (*Report, error) {
	if opts.Workers != 0 || opts.MailboxDepth != 0 || opts.StallTimeout != 0 || opts.MaxRestarts != 0 || opts.HardCrashes {
		return nil, configErr("sim", "Workers/MailboxDepth/StallTimeout/MaxRestarts/HardCrashes configure the concurrent backend; the simulator takes none")
	}
	res, err := sim.RunContext(ctx, p, sim.Config{
		Params:             opts.Params,
		MaxSeconds:         opts.MaxSeconds,
		Profile:            opts.Profile,
		Fault:              opts.Fault,
		CheckpointInterval: opts.CheckpointInterval,
		Reduce:             opts.Reduce,
		Trace:              opts.Trace,
		MaxCells:           opts.MaxCells,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Backend:       "sim",
		Time:          res.Time,
		Stats:         res.Stats,
		Aborted:       res.Aborted,
		Scalars:       res.Scalars,
		Arrays:        res.Arrays,
		HotStatements: res.Profile,
		Trace:         res.Trace,
	}, nil
}

type concurrentBackend struct{}

func (concurrentBackend) Name() string { return "concurrent" }

func (concurrentBackend) Run(ctx context.Context, p *spmd.Program, opts RunOptions) (*Report, error) {
	switch {
	case opts.MaxSeconds > 0:
		return nil, configErr("exec", "MaxSeconds bounds simulated time; bound the concurrent backend with a context deadline")
	case opts.Profile:
		return nil, configErr("exec", "per-statement profiling is simulator-only; trace the run instead (RunOptions.Trace)")
	}
	res, err := exec.Run(ctx, p, exec.Config{
		Params:             opts.Params,
		Workers:            opts.Workers,
		MailboxDepth:       opts.MailboxDepth,
		StallTimeout:       opts.StallTimeout,
		Trace:              opts.Trace,
		Fault:              opts.Fault,
		CheckpointInterval: opts.CheckpointInterval,
		MaxRestarts:        opts.MaxRestarts,
		HardCrashes:        opts.HardCrashes,
		Reduce:             opts.Reduce,
		MaxCells:           opts.MaxCells,
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Backend:           "concurrent",
		Time:              res.Time,
		Stats:             res.Stats,
		Scalars:           res.Scalars,
		Arrays:            res.Arrays,
		Workers:           res.Workers,
		TrafficMessages:   res.TrafficMessages,
		Trace:             res.Trace,
		Restarts:          res.Restarts,
		HardRestarts:      res.HardRestarts,
		WireDrops:         res.WireDrops,
		WireRetransmits:   res.WireRetransmits,
		WireDuplicates:    res.WireDuplicates,
		WireDupSuppressed: res.WireDupSuppressed,
	}, nil
}

// Diff runs the program through both backends — optionally traced, and
// optionally under the same seeded fault plan and checkpoint interval — and
// compares numeric results, communication statistics (including the fault
// and recovery counters), and (when traced) per-class event counts
// bit-for-bit. HardCrashes cannot be compared; it returns a coded E005
// diagnostic.
func (c *Compiled) Diff(ctx context.Context, opts RunOptions) (*DiffReport, error) {
	if opts.HardCrashes {
		return nil, configErr("differ", "the differential oracle cannot compare HardCrashes runs (run-level heals re-execute intervals the simulator models once)")
	}
	d := exec.Differ{
		Sim: sim.Config{
			Params:     opts.Params,
			MaxSeconds: opts.MaxSeconds,
			Profile:    opts.Profile,
			MaxCells:   opts.MaxCells,
		},
		Exec: exec.Config{
			Params:       opts.Params,
			Workers:      opts.Workers,
			MailboxDepth: opts.MailboxDepth,
			StallTimeout: opts.StallTimeout,
			MaxRestarts:  opts.MaxRestarts,
			MaxCells:     opts.MaxCells,
		},
		Trace:              opts.Trace,
		Fault:              opts.Fault,
		CheckpointInterval: opts.CheckpointInterval,
		Reduce:             opts.Reduce,
	}
	rep, err := d.Run(ctx, c.SPMD)
	if err != nil {
		var ce *exec.ConfigError
		if errors.As(err, &ce) {
			return nil, configErr("differ", "%s", ce.Msg)
		}
		return nil, err
	}
	return rep, nil
}

// DiffReport is the outcome of a differential sim-vs-exec run (see
// exec.DiffReport).
type DiffReport = exec.DiffReport

// Diags returns every non-fatal diagnostic the compilation emitted —
// analysis degradations (skipped directives, alignment fallbacks) followed
// by communication-placement notes — with source positions.
func (c *Compiled) Diags() []Diagnostic {
	out := make([]Diagnostic, 0, len(c.Result.Diags)+len(c.SPMD.Diags))
	out = append(out, c.Result.Diags...)
	out = append(out, c.SPMD.Diags...)
	return out
}

// Profile returns the per-pass instrumentation of the compilation: one entry
// per pass execution (including lazy re-runs after invalidation) plus the
// SPMD generation step, and any snapshots requested via Options.DumpAfter.
func (c *Compiled) Profile() *CompileProfile { return c.Result.Profile }

// FormatHotStatements renders the per-statement time attribution
// (Report.HotStatements) as a table of the top n hottest statements. The
// name disambiguates the two profiles: Profile() is the compile-time
// CompileProfile, HotStatements the runtime view.
func FormatHotStatements(hot []StmtProfile, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %10s  statement\n", "line", "instances", "seconds")
	for i, p := range hot {
		if i >= n {
			break
		}
		fmt.Fprintf(&b, "%8d %12d %10.4f  s%d (%s)\n",
			p.Stmt.Line, p.Instances, p.Seconds, p.Stmt.ID, p.Stmt.Kind)
	}
	return b.String()
}

// DumpSPMD renders the generated SPMD program (guards and communication).
func (c *Compiled) DumpSPMD() string { return c.SPMD.Dump() }

// StmtLabels returns the statement-ID → human-readable-label table that
// trace events and summaries reference (the same labels a TraceRecorder
// attaches to its events).
func (c *Compiled) StmtLabels() map[int]string { return c.SPMD.StmtLabels() }

// FormatStmtLabels renders the statement-label table in ID order — the key
// for reading per-statement trace histograms and Chrome trace exports.
func (c *Compiled) FormatStmtLabels() string {
	labels := c.StmtLabels()
	ids := make([]int, 0, len(labels))
	for id := range labels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%4d  %s\n", id, labels[id])
	}
	return b.String()
}

// MappingReport lists every mapping decision: scalar definitions, privatized
// arrays, and control flow statements.
func (c *Compiled) MappingReport() string {
	var b strings.Builder
	res := c.Result
	fmt.Fprintf(&b, "grid %s\n", res.Mapping.Grid)

	var lines []string
	for _, m := range res.Scalars {
		lines = append(lines, "scalar "+m.String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l + "\n")
	}

	var arrays []string
	for _, ap := range res.Arrays {
		arrays = append(arrays, "array "+ap.String())
	}
	sort.Strings(arrays)
	for _, l := range arrays {
		b.WriteString(l + "\n")
	}

	for _, st := range res.Prog.Stmts {
		if st.Kind != ir.SIf && st.Kind != ir.SIfGoto {
			continue
		}
		state := "executed on all processors"
		if res.CtrlPrivatized(st) {
			state = "privatized"
		}
		fmt.Fprintf(&b, "control s%d (line %d): %s\n", st.ID, st.Line, state)
	}

	for _, iv := range res.Inductions {
		fmt.Fprintf(&b, "induction %s in %s-loop: init=%d incr=%d\n",
			iv.Var.Name, iv.Loop.Index.Name, iv.Init, iv.Incr)
	}
	for _, red := range res.Reductions {
		fmt.Fprintf(&b, "reduction %s (%s) carried by %s-loop\n",
			red.Var.Name, red.Op, red.Loop.Index.Name)
	}
	return b.String()
}

// ExplainPriv renders the privatization classification of the compilation:
// one line per (variable, loop) candidate with the decision and its reason
// — including why each declined variable was serialized and which blocking
// reference is responsible — followed by the annotations the inference pass
// inserted. phpfc -explain-priv prints it.
func (c *Compiled) ExplainPriv() string {
	var b strings.Builder
	fmt.Fprintf(&b, "privatization mode: %s\n", c.Opts.PrivatizationMode())
	sum := c.Result.Priv
	if sum == nil || len(sum.Classes) == 0 {
		b.WriteString("no privatization candidates\n")
		return b.String()
	}
	for i := range sum.Classes {
		cl := &sum.Classes[i]
		fmt.Fprintf(&b, "%s wrt %s-loop: %s", cl.Var.Name, cl.Loop.Index.Name, cl.Decision)
		if cl.Directive {
			b.WriteString(" [directive]")
		}
		if cl.Inserted {
			b.WriteString(" [inserted]")
		}
		fmt.Fprintf(&b, " — %s\n", cl.Reason)
	}
	for _, l := range c.Result.Prog.Loops {
		if len(l.InferredNew) > 0 {
			fmt.Fprintf(&b, "%s-loop inferred new(%s)\n", l.Index.Name, strings.Join(l.InferredNew, ","))
		}
		if len(l.InferredLast) > 0 {
			fmt.Fprintf(&b, "%s-loop inferred lastprivate(%s)\n", l.Index.Name, strings.Join(l.InferredLast, ","))
		}
	}
	return b.String()
}

// ReducePlanReport renders the reduceplan classification: one line per
// recognized reduction with the static privatizable-vs-collective decision
// and the strategy the given runtime mode would actually use. A privatize
// line marked E005 is the configuration both backends reject at run time
// (ReducePrivatize demands every reduction leave the collective path).
// phpfc -reduce prints it.
func (c *Compiled) ReducePlanReport(mode ReduceMode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "reduce mode: %s\n", mode)
	rp := c.Result.ReducePlan
	if rp == nil || len(rp.Decisions) == 0 {
		b.WriteString("no recognized reductions\n")
		return b.String()
	}
	for _, d := range rp.Decisions {
		switch {
		case !d.Privatizable && mode == ReducePrivatize:
			fmt.Fprintf(&b, "%s (%s): E005 — %s\n", d.Red.Var.Name, d.Red.Op, d.Reason)
		case !d.Privatizable:
			fmt.Fprintf(&b, "%s (%s): collective — %s\n", d.Red.Var.Name, d.Red.Op, d.Reason)
		case mode == ReduceCollective:
			fmt.Fprintf(&b, "%s (%s): collective (privatizable; mode forces collective)\n",
				d.Red.Var.Name, d.Red.Op)
		default:
			fmt.Fprintf(&b, "%s (%s): privatized\n", d.Red.Var.Name, d.Red.Op)
		}
	}
	return b.String()
}

// CommReport summarizes the communication plan.
func (c *Compiled) CommReport() string {
	p := c.SPMD.Plan
	var b strings.Builder
	counts := p.CountByClass()
	var classes []dist.CommClass
	for cl := range counts {
		classes = append(classes, cl)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, cl := range classes {
		fmt.Fprintf(&b, "%s: %d\n", cl, counts[cl])
	}
	b.WriteString(p.Summary())
	if len(p.Reqs) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Benchmark sources (the paper's §5 programs)

// TOMCATVSource returns the TOMCATV kernel (§5.1) at the given size.
func TOMCATVSource(n, niter int) string { return programs.TOMCATV(n, niter) }

// DGEFASource returns the DGEFA kernel (§5.2) at the given size.
func DGEFASource(n int) string { return programs.DGEFA(n) }

// APPSPSource returns the APPSP-style kernel (§5.3); twoD selects the fixed
// 2-D distribution, otherwise the 1-D distribution with transposes.
func APPSPSource(nx, ny, nz, niter int, twoD bool) string {
	return programs.APPSP(nx, ny, nz, niter, twoD)
}

// SmoothSource returns the quickstart example's three-point smoothing
// kernel: the smallest program with real nearest-neighbor communication.
func SmoothSource(n, niter int) string { return programs.Smooth(n, niter) }

// HistogramSource returns the reduce sweep's commutative-update histogram
// kernel: h(key(i)) = h(key(i)) + 1 through a data-dependent subscript. Its
// counts are integers, so every reduction strategy reproduces it exactly.
func HistogramSource(n, m, niter int) string { return programs.Histogram(n, m, niter) }

// DotSweepSource returns the reduce sweep's dot-product sweep kernel:
// r(j) = r(j) + x(i,j)*y(i,j) carried by the i-loop.
func DotSweepSource(n, m int) string { return programs.DotSweep(n, m) }

// FigureSource returns one of the paper's figure examples ("figure1",
// "figure2", "figure4", "figure5", "figure6", "figure7").
func FigureSource(name string) (string, bool) {
	s, ok := programs.Figures[name]
	return s, ok
}

// FigureNames lists the available figure examples, sorted.
func FigureNames() []string {
	var out []string
	for n := range programs.Figures {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
