// Package phpf reproduces the compiler framework of Gupta, "On
// Privatization of Variables for Data-Parallel Execution" (IPPS 1997): an
// HPF-like mini-language, the privatization and mapping analyses of the phpf
// prototype compiler (scalar alignment selection, reduction mapping, full
// and partial array privatization, control-flow privatization), SPMD code
// generation under the owner-computes rule with message vectorization, and
// a deterministic IBM SP2-style machine simulator that executes the
// compiled programs and reports execution time and communication activity.
//
// Typical use:
//
//	c, err := phpf.Compile(source, 16, phpf.SelectedOptions())
//	out, err := c.Run(phpf.RunConfig{})
//	fmt.Println(out.Time, out.Stats)
package phpf

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"phpf/internal/core"
	"phpf/internal/diag"
	"phpf/internal/dist"
	"phpf/internal/exec"
	"phpf/internal/fault"
	"phpf/internal/ir"
	"phpf/internal/machine"
	"phpf/internal/parser"
	"phpf/internal/pass"
	"phpf/internal/programs"
	"phpf/internal/sim"
	"phpf/internal/spmd"
)

// Re-exported option types: one import suffices for the whole API.
type (
	// Options selects which of the paper's optimizations the compiler
	// applies (see core.Options).
	Options = core.Options
	// ScalarStrategy is the scalar-mapping level of Table 1.
	ScalarStrategy = core.ScalarStrategy
	// MachineParams are the simulated machine's cost parameters.
	MachineParams = machine.Params
	// Stats aggregates simulated communication activity.
	Stats = machine.Stats
	// Diagnostic is a positioned, coded compiler diagnostic (see
	// internal/diag.Diagnostic); every stage reports problems this way.
	Diagnostic = core.Diagnostic
	// Severity grades a Diagnostic (info, warning, error).
	Severity = diag.Severity
	// CompileProfile is the per-pass instrumentation of a compilation (see
	// pass.CompileProfile); phpfc -trace prints it.
	CompileProfile = pass.CompileProfile
	// PassStat is one pass execution in a CompileProfile.
	PassStat = pass.PassStat
	// FaultPlan is a deterministic fault-injection schedule (see
	// fault.Plan).
	FaultPlan = fault.Plan
	// Crash is a fail-stop processor crash at a simulated time.
	Crash = fault.Crash
	// Slowdown is a transient per-processor compute slowdown.
	Slowdown = fault.Slowdown
)

// Diagnostic severities.
const (
	SeverityInfo    = diag.Info
	SeverityWarning = diag.Warning
	SeverityError   = diag.Error
)

// ParseCrashes parses a CLI crash list "proc@time,proc@time".
func ParseCrashes(s string) ([]Crash, error) { return fault.ParseCrashes(s) }

// ParseSlowdowns parses a CLI slowdown list
// "proc:factor[:start[:duration]],...".
func ParseSlowdowns(s string) ([]Slowdown, error) { return fault.ParseSlowdowns(s) }

// Scalar strategies (Table 1 columns).
const (
	ScalarsReplicated      = core.ScalarsReplicated
	ScalarsProducerAligned = core.ScalarsProducerAligned
	ScalarsSelected        = core.ScalarsSelected
)

// SelectedOptions is the full compiler of §2.2–§4 (Table 1 "Selected
// Alignment", Table 2 "Alignment", Table 3 privatization columns).
func SelectedOptions() Options { return core.DefaultOptions() }

// ProducerOptions is the Table 1 middle column: privatization with
// producer-only alignment.
func ProducerOptions() Options {
	o := core.DefaultOptions()
	o.Scalars = ScalarsProducerAligned
	return o
}

// NaiveOptions is the Table 1 first column: no privatization — every scalar
// replicated, reduction variables included.
func NaiveOptions() Options {
	o := core.DefaultOptions()
	o.Scalars = ScalarsReplicated
	o.AlignReductions = false
	return o
}

// SP2Params returns the default machine parameters (IBM SP2 thin nodes).
func SP2Params() MachineParams { return machine.SP2() }

// Compiled is a fully analyzed program ready to simulate.
type Compiled struct {
	Source string
	NProcs int
	Opts   Options

	Result *core.Result
	SPMD   *spmd.Program
}

// Compile parses, analyzes and lowers a mini-HPF program for nprocs
// processors.
func Compile(source string, nprocs int, opts Options) (*Compiled, error) {
	ap, err := parser.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("phpf: %w", err)
	}
	res, err := core.BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		return nil, fmt.Errorf("phpf: %w", err)
	}
	start := time.Now()
	sp := spmd.Generate(res)
	// SPMD generation runs outside the pass manager; time it the same way so
	// -trace accounts for the whole compilation.
	res.Profile.Stats = append(res.Profile.Stats, pass.PassStat{
		Name:  "spmd",
		Wall:  time.Since(start),
		Diags: len(sp.Diags),
	})
	return &Compiled{
		Source: source,
		NProcs: nprocs,
		Opts:   opts,
		Result: res,
		SPMD:   sp,
	}, nil
}

// RunConfig configures a simulation.
type RunConfig struct {
	// Params are the machine cost parameters (SP2Params() when zero).
	Params MachineParams
	// MaxSeconds aborts once simulated time exceeds it (0 = unlimited) —
	// the paper's "> 1 day (aborted)" entries.
	MaxSeconds float64
	// Profile collects per-statement time attribution (RunResult.Profile).
	Profile bool
	// Fault, when non-nil and active, injects deterministic faults
	// (message loss/duplication, slowdowns, crashes). Nil or inactive plans
	// reproduce the fault-free run exactly.
	Fault *FaultPlan
	// CheckpointInterval enables coordinated checkpointing every so many
	// simulated seconds, at hoisted-communication boundaries (0 = off; a
	// crash then recovers from time 0).
	CheckpointInterval float64
}

// RunResult is the outcome of a simulated execution.
type RunResult = sim.Result

// Run executes the compiled program on the simulated machine.
func (c *Compiled) Run(cfg RunConfig) (*RunResult, error) {
	return sim.Run(c.SPMD, sim.Config{
		Params:             cfg.Params,
		MaxSeconds:         cfg.MaxSeconds,
		Profile:            cfg.Profile,
		Fault:              cfg.Fault,
		CheckpointInterval: cfg.CheckpointInterval,
	})
}

// ExecConfig configures the concurrent execution backend (see exec.Config):
// worker count, mailbox depth, and the stall-watchdog timeout. Cancellation
// and deadlines come from the context passed to RunConcurrent.
type ExecConfig = exec.Config

// ExecResult is the outcome of a concurrent execution (see exec.Result).
type ExecResult = exec.Result

// DiffReport is the outcome of a differential sim-vs-exec run (see
// exec.DiffReport).
type DiffReport = exec.DiffReport

// RunConcurrent executes the compiled program on the concurrent SPMD
// backend: one goroutine per simulated processor exchanging real messages
// over bounded mailboxes, with panic containment, a stall watchdog, and
// context-based cancellation/deadline enforcement. Fault injection and
// checkpointing are simulator-only features; use Run for those.
func (c *Compiled) RunConcurrent(ctx context.Context, cfg ExecConfig) (*ExecResult, error) {
	return exec.Run(ctx, c.SPMD, cfg)
}

// DiffBackends runs the program through both the sequential simulator and
// the concurrent executor and compares numeric results and communication
// statistics bit-for-bit — the differential oracle that keeps the two
// backends honest. simCfg must be fault-free with checkpointing off.
func (c *Compiled) DiffBackends(ctx context.Context, simCfg RunConfig, execCfg ExecConfig) (*DiffReport, error) {
	d := exec.Differ{
		Sim: sim.Config{
			Params:             simCfg.Params,
			MaxSeconds:         simCfg.MaxSeconds,
			Profile:            simCfg.Profile,
			Fault:              simCfg.Fault,
			CheckpointInterval: simCfg.CheckpointInterval,
		},
		Exec: execCfg,
	}
	return d.Run(ctx, c.SPMD)
}

// Diags returns every non-fatal diagnostic the compilation emitted —
// analysis degradations (skipped directives, alignment fallbacks) followed
// by communication-placement notes — with source positions.
func (c *Compiled) Diags() []Diagnostic {
	out := make([]Diagnostic, 0, len(c.Result.Diags)+len(c.SPMD.Diags))
	out = append(out, c.Result.Diags...)
	out = append(out, c.SPMD.Diags...)
	return out
}

// Profile returns the per-pass instrumentation of the compilation: one entry
// per pass execution (including lazy re-runs after invalidation) plus the
// SPMD generation step, and any snapshots requested via Options.DumpAfter.
func (c *Compiled) Profile() *CompileProfile { return c.Result.Profile }

// FormatProfile renders a profile as a hot-statement table (top n entries).
func FormatProfile(prof []sim.StmtProfile, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %10s  statement\n", "line", "instances", "seconds")
	for i, p := range prof {
		if i >= n {
			break
		}
		fmt.Fprintf(&b, "%8d %12d %10.4f  s%d (%s)\n",
			p.Stmt.Line, p.Instances, p.Seconds, p.Stmt.ID, p.Stmt.Kind)
	}
	return b.String()
}

// DumpSPMD renders the generated SPMD program (guards and communication).
func (c *Compiled) DumpSPMD() string { return c.SPMD.Dump() }

// MappingReport lists every mapping decision: scalar definitions, privatized
// arrays, and control flow statements.
func (c *Compiled) MappingReport() string {
	var b strings.Builder
	res := c.Result
	fmt.Fprintf(&b, "grid %s\n", res.Mapping.Grid)

	var lines []string
	for _, m := range res.Scalars {
		lines = append(lines, "scalar "+m.String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l + "\n")
	}

	var arrays []string
	for _, ap := range res.Arrays {
		arrays = append(arrays, "array "+ap.String())
	}
	sort.Strings(arrays)
	for _, l := range arrays {
		b.WriteString(l + "\n")
	}

	for _, st := range res.Prog.Stmts {
		if st.Kind != ir.SIf && st.Kind != ir.SIfGoto {
			continue
		}
		state := "executed on all processors"
		if res.CtrlPrivatized(st) {
			state = "privatized"
		}
		fmt.Fprintf(&b, "control s%d (line %d): %s\n", st.ID, st.Line, state)
	}

	for _, iv := range res.Inductions {
		fmt.Fprintf(&b, "induction %s in %s-loop: init=%d incr=%d\n",
			iv.Var.Name, iv.Loop.Index.Name, iv.Init, iv.Incr)
	}
	for _, red := range res.Reductions {
		fmt.Fprintf(&b, "reduction %s (%s) carried by %s-loop\n",
			red.Var.Name, red.Op, red.Loop.Index.Name)
	}
	return b.String()
}

// CommReport summarizes the communication plan.
func (c *Compiled) CommReport() string {
	p := c.SPMD.Plan
	var b strings.Builder
	counts := p.CountByClass()
	var classes []dist.CommClass
	for cl := range counts {
		classes = append(classes, cl)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, cl := range classes {
		fmt.Fprintf(&b, "%s: %d\n", cl, counts[cl])
	}
	b.WriteString(p.Summary())
	if len(p.Reqs) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Benchmark sources (the paper's §5 programs)

// TOMCATVSource returns the TOMCATV kernel (§5.1) at the given size.
func TOMCATVSource(n, niter int) string { return programs.TOMCATV(n, niter) }

// DGEFASource returns the DGEFA kernel (§5.2) at the given size.
func DGEFASource(n int) string { return programs.DGEFA(n) }

// APPSPSource returns the APPSP-style kernel (§5.3); twoD selects the fixed
// 2-D distribution, otherwise the 1-D distribution with transposes.
func APPSPSource(nx, ny, nz, niter int, twoD bool) string {
	return programs.APPSP(nx, ny, nz, niter, twoD)
}

// SmoothSource returns the quickstart example's three-point smoothing
// kernel: the smallest program with real nearest-neighbor communication.
func SmoothSource(n, niter int) string { return programs.Smooth(n, niter) }

// FigureSource returns one of the paper's figure examples ("figure1",
// "figure2", "figure4", "figure5", "figure6", "figure7").
func FigureSource(name string) (string, bool) {
	s, ok := programs.Figures[name]
	return s, ok
}

// FigureNames lists the available figure examples, sorted.
func FigureNames() []string {
	var out []string
	for n := range programs.Figures {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
