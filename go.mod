module phpf

go 1.22
