package phpf

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"phpf/internal/diag"
)

// TestRunOptionsValidate is the zero/negative/absurd-value gate the serving
// path runs before spending any cycles: every rejection is a coded E005.
func TestRunOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts RunOptions
		ok   bool
	}{
		{"zero value", RunOptions{}, true},
		{"explicit budget", RunOptions{MaxCells: 1 << 20}, true},
		{"negative MaxCells", RunOptions{MaxCells: -1}, false},
		{"negative MaxSeconds", RunOptions{MaxSeconds: -1}, false},
		{"NaN MaxSeconds", RunOptions{MaxSeconds: math.NaN()}, false},
		{"Inf CheckpointInterval", RunOptions{CheckpointInterval: math.Inf(1)}, false},
		{"negative Workers", RunOptions{Workers: -2}, false},
		{"negative MailboxDepth", RunOptions{MailboxDepth: -1}, false},
		{"absurd loss rate", RunOptions{Fault: &FaultPlan{Seed: 1, LossRate: 1.5}}, false},
		{"bad machine params", RunOptions{Params: badParams()}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.ok {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			var d *diag.Diagnostic
			if !errors.As(err, &d) || d.Code != diag.CodeConfig {
				t.Fatalf("want coded E005 rejection, got %T %v", err, err)
			}
		})
	}
}

// badParams poisons one field of an otherwise valid machine model.
func badParams() MachineParams {
	p := SP2Params()
	p.Latency = -1
	return p
}

// TestMaxCellsBudgetBothBackends drives the E006 budget through the public
// API: the same breach surfaces as a coded diagnostic from the simulator,
// the concurrent executor, and the differ.
func TestMaxCellsBudgetBothBackends(t *testing.T) {
	c, err := Compile(SmoothSource(64, 2), 4, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantBudget := func(t *testing.T, err error) {
		t.Helper()
		if err == nil {
			t.Fatal("tiny MaxCells budget must reject the run")
		}
		var d *diag.Diagnostic
		if !errors.As(err, &d) || d.Code != diag.CodeBudget {
			t.Fatalf("want coded E006, got %T %v", err, err)
		}
	}
	for _, name := range Backends() {
		t.Run(name, func(t *testing.T) {
			b, _ := BackendByName(name)
			_, err := c.Execute(context.Background(), b, RunOptions{MaxCells: 16})
			wantBudget(t, err)
			rep, err := c.Execute(context.Background(), b, RunOptions{MaxCells: 1 << 20})
			if err != nil {
				t.Fatalf("generous budget must pass: %v", err)
			}
			if rep == nil || len(rep.Arrays) == 0 {
				t.Fatal("generous-budget run returned no arrays")
			}
		})
	}
	t.Run("diff", func(t *testing.T) {
		_, err := c.Diff(context.Background(), RunOptions{MaxCells: 16})
		wantBudget(t, err)
	})
}

// TestCompiledConcurrentReuse is the regression test for the serving
// contract that one *Compiled safely serves many simultaneous Execute and
// Diff calls (run under -race in CI): no backend may mutate shared compile
// artifacts, and results stay deterministic across interleavings.
func TestCompiledConcurrentReuse(t *testing.T) {
	c, err := Compile(SmoothSource(32, 2), 4, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := BackendByName("sim")
	conc, _ := BackendByName("concurrent")

	// One reference run to compare every concurrent result against.
	ref, err := c.Execute(context.Background(), sim, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 24
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				rep, err := c.Execute(context.Background(), sim, RunOptions{})
				if err != nil {
					errs[i] = err
					return
				}
				if rep.Time != ref.Time {
					t.Errorf("goroutine %d: sim time %v, want %v (shared state mutated?)", i, rep.Time, ref.Time)
				}
			case 1:
				rep, err := c.Execute(context.Background(), conc, RunOptions{})
				if err != nil {
					errs[i] = err
					return
				}
				if rep.Time != ref.Time {
					t.Errorf("goroutine %d: concurrent modeled time %v, want %v", i, rep.Time, ref.Time)
				}
			case 2:
				dr, err := c.Diff(context.Background(), RunOptions{})
				if err != nil {
					errs[i] = err
					return
				}
				if !dr.Match() {
					t.Errorf("goroutine %d: diff mismatch under concurrent reuse: %v", i, dr.Mismatches)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

// TestCacheKeyStability pins the cache key's discriminants: source, procs,
// options, and the reduce mode all partition the key space; identical
// inputs collide.
func TestCacheKeyStability(t *testing.T) {
	src := SmoothSource(16, 1)
	k := CacheKey(src, 4, SelectedOptions(), ReduceAuto)
	if k != CacheKey(src, 4, SelectedOptions(), ReduceAuto) {
		t.Fatal("identical inputs must produce identical keys")
	}
	if k == CacheKey(src+" ", 4, SelectedOptions(), ReduceAuto) {
		t.Fatal("source must discriminate the key")
	}
	if k == CacheKey(src, 8, SelectedOptions(), ReduceAuto) {
		t.Fatal("procs must discriminate the key")
	}
	if k == CacheKey(src, 4, NaiveOptions(), ReduceAuto) {
		t.Fatal("options must discriminate the key")
	}
	// cache-v3 regression: flipping only the reduce mode must miss — cache
	// entries carry per-strategy execution defaults, so a v2-style key that
	// ignored the mode would serve the wrong strategy on a hit.
	if k == CacheKey(src, 4, SelectedOptions(), ReduceCollective) {
		t.Fatal("reduce mode must discriminate the key")
	}
	if len(k) != 64 {
		t.Fatalf("key is %d hex chars, want 64 (sha256)", len(k))
	}
}
