package phpf

import (
	"context"
	"testing"
)

// TestDGEFALossyRunDeterministic is the headline acceptance property: two
// runs of DGEFA with the same fault seed and a 1% loss rate agree on every
// reported number, and retransmissions actually occurred.
func TestDGEFALossyRunDeterministic(t *testing.T) {
	src := DGEFASource(64)
	opts := RunOptions{Fault: &FaultPlan{Seed: 7, LossRate: 0.01}}
	run := func() *Report {
		c, err := Compile(src, 8, SelectedOptions())
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Execute(context.Background(), Simulator(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Stats != b.Stats {
		t.Fatalf("same seed diverged:\n%v %+v\n%v %+v", a.Time, a.Stats, b.Time, b.Stats)
	}
	if a.Stats.Retransmits == 0 {
		t.Error("1% loss on DGEFA produced no retransmits")
	}
}

// TestFaultSweepShape: the sweep covers all strategies and rates, its
// zero-rate column matches the fault-free run, and lossy cells retransmit.
func TestFaultSweepShape(t *testing.T) {
	src := DGEFASource(48)
	rates := []float64{0, 0.02}
	rows, err := FaultSweep(src, 8, rates, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 strategy rows, got %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Cells) != len(rates) {
			t.Fatalf("%s: want %d cells, got %d", row.Strategy, len(rates), len(row.Cells))
		}
		if row.Cells[0].Stats.Retransmits != 0 {
			t.Errorf("%s: zero loss rate must not retransmit", row.Strategy)
		}
		if row.Cells[1].Stats.Retransmits == 0 {
			t.Errorf("%s: 2%% loss produced no retransmits", row.Strategy)
		}
		if !(row.Cells[1].Seconds > row.Cells[0].Seconds) {
			t.Errorf("%s: lossy run not slower: %v vs %v",
				row.Strategy, row.Cells[1].Seconds, row.Cells[0].Seconds)
		}
	}
	out := FormatFaultSweep("DGEFA n=48, p=8", rates, rows)
	if out == "" {
		t.Error("empty sweep rendering")
	}
}
