// Command benchjson turns `go test -bench` output into the repo's
// BENCH_<n>.json trajectory format and gates regressions against a committed
// baseline.
//
//	go test -run '^$' -bench ... -benchmem . | benchjson emit -o BENCH_1.json
//	benchjson compare BENCH_0.json BENCH_1.json -tolerance 0.15
//
// emit parses the benchmark lines on stdin; with -count > 1 every benchmark
// appears several times and the minimum ns/op (the least-noisy estimate of
// the true cost) is kept, along with bytes/op and allocs/op when -benchmem
// was on and any custom metrics (sim-sec/run, stmt-instances/s).
//
// compare exits nonzero when any benchmark present in both files regressed
// by more than the tolerance in ns/op (new > old * (1 + tolerance)).
// Benchmarks present in only one file are reported but do not fail the gate,
// so adding or retiring a benchmark does not require regenerating history.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's aggregated result.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Samples     int                `json:"samples"`
}

// File is one BENCH_<n>.json: a schema tag, the toolchain, and the
// per-benchmark results (keys sorted by encoding/json for stable diffs).
type File struct {
	Schema     int              `json:"schema"`
	Go         string           `json:"go"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "emit":
		emit(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchjson emit [-o file] < bench-output")
	fmt.Fprintln(os.Stderr, "       benchjson compare [-tolerance 0.15] baseline.json new.json")
	os.Exit(2)
}

// benchLine matches one `go test -bench` result line: the name (with the
// trailing -GOMAXPROCS), the iteration count, and the metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func emit(args []string) {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	f := File{Schema: 1, Go: runtime.Version(), Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		// Strip the -GOMAXPROCS suffix go test appends to the name.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b, seen := f.Benchmarks[name]
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			switch unit {
			case "ns/op":
				if !seen || val < b.NsPerOp {
					b.NsPerOp = val
				}
			case "B/op":
				if !seen || val < b.BytesPerOp {
					b.BytesPerOp = val
				}
			case "allocs/op":
				if !seen || val < b.AllocsPerOp {
					b.AllocsPerOp = val
				}
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		b.Samples++
		f.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(f.Benchmarks))
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tolerance", 0.15, "allowed fractional ns/op regression")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	oldF, newF := load(fs.Arg(0)), load(fs.Arg(1))

	var names []string
	for name := range oldF.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	compared := 0
	for _, name := range names {
		ob := oldF.Benchmarks[name]
		nb, ok := newF.Benchmarks[name]
		if !ok {
			fmt.Printf("  %-44s  only in baseline (skipped)\n", name)
			continue
		}
		compared++
		delta := nb.NsPerOp/ob.NsPerOp - 1
		mark := "ok"
		if delta > *tol {
			mark = "REGRESSION"
			failed++
		}
		fmt.Printf("  %-44s  %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, ob.NsPerOp, nb.NsPerOp, delta*100, mark)
	}
	for name := range newF.Benchmarks {
		if _, ok := oldF.Benchmarks[name]; !ok {
			fmt.Printf("  %-44s  new benchmark (no baseline)\n", name)
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmarks in common between %s and %s", fs.Arg(0), fs.Arg(1)))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", failed, *tol*100, fs.Arg(0)))
	}
	fmt.Printf("benchjson: %d benchmarks within %.0f%% of %s\n", compared, *tol*100, fs.Arg(0))
}

func load(path string) File {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	if len(f.Benchmarks) == 0 {
		fatal(fmt.Errorf("%s: no benchmarks", path))
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
