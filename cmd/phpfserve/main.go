// Command phpfserve is the hardened multi-tenant compile-and-execute
// service: the paper's privatization pipeline behind an HTTP API with
// admission control, load shedding, and graceful degradation.
//
// Usage:
//
//	phpfserve -addr :8080
//	phpfserve -addr :8080 -max-concurrent 32 -per-tenant 8 -queue-depth 64
//	phpfserve -addr :8080 -chaos            # allow fault-injected requests
//
// Endpoints:
//
//	POST /v1/compile  {"source"|"figure", "procs", "opt"}
//	POST /v1/run      + {"backend", "timeout_ms", "max_cells", "chaos"}
//	POST /v1/diff     both backends, differential-oracle verdict
//	GET  /healthz     liveness + metrics snapshot
//	GET  /readyz      503 once draining
//
// Shutdown: the first SIGTERM/SIGINT starts a graceful drain — the listener
// stops accepting, /readyz flips to 503, in-flight requests finish or are
// deadline-cancelled at -grace, and the final metrics snapshot is flushed
// to the log. A second signal forces immediate exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"phpf/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	maxProcs := flag.Int("max-procs", 64, "per-request processor-count cap")
	maxSource := flag.Int64("max-source-bytes", 1<<20, "program text size cap")
	cacheSize := flag.Int("cache-size", serve.DefaultCacheSize, "compiled-program LRU capacity")
	maxConcurrent := flag.Int("max-concurrent", serve.DefaultMaxConcurrent, "global concurrent execution slots")
	perTenant := flag.Int("per-tenant", serve.DefaultPerTenant, "concurrent execution slots per tenant")
	queueDepth := flag.Int("queue-depth", serve.DefaultQueueDepth, "per-tenant waiting line beyond the slots; full = shed with 429")
	timeout := flag.Duration("timeout", 10*time.Second, "default per-request execution deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
	maxCells := flag.Int64("max-cells", 1<<22, "per-memory-image array cell budget (0 = unlimited; breach = coded 422, not an OOM)")
	chaos := flag.Bool("chaos", false, "allow requests to route through the fault-injection layer (self-testing)")
	grace := flag.Duration("grace", 20*time.Second, "drain grace: in-flight requests get this long before deadline-cancel")
	flag.Parse()

	logger := log.New(os.Stderr, "phpfserve: ", log.LstdFlags|log.Lmicroseconds)
	srv := serve.New(serve.Config{
		MaxProcs:       *maxProcs,
		MaxSourceBytes: *maxSource,
		CacheSize:      *cacheSize,
		MaxConcurrent:  *maxConcurrent,
		PerTenant:      *perTenant,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxCells:       *maxCells,
		Chaos:          *chaos,
		Logf:           logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		// Slow clients cannot hold a connection forever: the body read is
		// bounded too, and handler work by the execution deadline.
		ReadTimeout: 30 * time.Second,
		IdleTimeout: 120 * time.Second,
	}
	// The resolved address on stdout lets scripts bind :0 and discover the
	// port (the serve smoke does exactly that).
	fmt.Printf("phpfserve listening on %s\n", ln.Addr())
	logger.Printf("listening on %s (chaos=%v, max-cells=%d, cache=%d)", ln.Addr(), *chaos, *maxCells, *cacheSize)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		logger.Printf("%v: draining (grace %v; send the signal again to force exit)", sig, *grace)
	}

	// Second signal anywhere past this point forces exit.
	go func() {
		sig := <-sigCh
		logger.Printf("%v: forcing exit", sig)
		srv.CancelInflight()
		_ = httpSrv.Close()
		flushMetrics(logger, srv)
		os.Exit(1)
	}()

	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop accepting and flip readiness first, then wait out in-flight
	// work; Drain deadline-cancels whatever outlives the grace period.
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- httpSrv.Shutdown(drainCtx) }()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain: deadline-cancelled in-flight requests: %v", err)
	} else {
		logger.Printf("drain: all in-flight requests completed")
	}
	if err := <-shutdownErr; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	_ = httpSrv.Close()
	flushMetrics(logger, srv)
}

// flushMetrics writes the final snapshot to the log — the graceful-drain
// contract includes not losing the run's counters.
func flushMetrics(logger *log.Logger, srv *serve.Server) {
	snap, err := json.Marshal(srv.Snapshot())
	if err != nil {
		logger.Printf("metrics flush failed: %v", err)
		return
	}
	logger.Printf("final metrics: %s", snap)
}
