// Command phpfrun compiles a mini-HPF program and executes it on one of the
// two backends behind the unified phpf.Backend API, reporting execution time
// and communication statistics.
//
// Usage:
//
//	phpfrun [-p procs] [-opt naive|producer|selected] [-max seconds] file.f
//	phpfrun -tomcatv -n 129 -iters 5 -p 16
//	phpfrun -dgefa -n 128 -p 8
//	phpfrun -appsp -n 16 -iters 2 -2d -p 16
//
// Concurrent backend (one goroutine per simulated processor, real message
// passing, watchdog and panic containment; -deadline is wall-clock):
//
//	phpfrun -tomcatv -p 16 -exec concurrent
//	phpfrun -dgefa -n 64 -p 8 -exec concurrent -workers 8 -deadline 30s -stall 5s
//
// Tracing (works on both backends; the simulator stamps simulated time, the
// concurrent executor wall time):
//
//	phpfrun -tomcatv -p 16 -trace-out run.json          # chrome://tracing / Perfetto
//	phpfrun -dgefa -n 64 -p 8 -exec concurrent -trace-summary
//
// Fault injection (deterministic for a fixed -fault-seed; works on both
// backends — the simulator models the faults in simulated time, the
// concurrent backend makes them physical: real dropped transmissions,
// retransmit/backoff on the wire, coordinated checkpoint/restart of the
// worker goroutines):
//
//	phpfrun -dgefa -n 128 -p 8 -fault-seed 42 -loss-rate 0.01
//	phpfrun -tomcatv -p 16 -crash 3@0.5 -checkpoint-interval 0.1
//	phpfrun -tomcatv -p 16 -slowdown 2:1.5:0.1:0.4
//	phpfrun -dgefa -n 64 -p 8 -exec concurrent -fault-seed 42 -loss-rate 0.05
//	phpfrun -dgefa -n 64 -p 8 -exec concurrent -crash 1@0.2 -checkpoint-interval 0.05 -hard-crashes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"phpf"
)

func main() {
	procs := flag.Int("p", 16, "number of processors")
	level := flag.String("opt", "selected", "optimization level: naive, producer, selected")
	maxSec := flag.Float64("max", 0, "abort after this much simulated time (0 = unlimited; simulator only)")
	profile := flag.Bool("profile", false, "print per-statement time attribution (simulator only)")
	tomcatv := flag.Bool("tomcatv", false, "run the built-in TOMCATV kernel")
	dgefa := flag.Bool("dgefa", false, "run the built-in DGEFA kernel")
	appsp := flag.Bool("appsp", false, "run the built-in APPSP kernel")
	twoD := flag.Bool("2d", false, "APPSP: use the 2-D distribution")
	n := flag.Int("n", 129, "built-in kernel size")
	iters := flag.Int("iters", 5, "built-in kernel iterations")
	privatize := flag.String("privatize", "", "privatization mode: directives, infer (default), infer-strict")
	reduce := flag.String("reduce", "", "runtime reduction strategy: auto (default), collective, privatize")

	backend := flag.String("exec", "sim", "execution backend: sim (sequential simulator) or concurrent (goroutine per processor)")
	workers := flag.Int("workers", 0, "concurrent backend: worker count (0 = one per simulated processor)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole run (0 = none)")
	stallTimeout := flag.Duration("stall", 0, "concurrent backend: watchdog stall timeout (0 = default, negative = disabled)")

	traceOut := flag.String("trace-out", "", "record a runtime trace and write it as Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev)")
	traceSummary := flag.Bool("trace-summary", false, "record a runtime trace and print the communication matrix and per-statement histogram")
	traceSample := flag.Int("trace-sample", 0, "keep 1 in N events in the trace ring (0/1 = all; matrix and counters stay exact)")

	faultSeed := flag.Int64("fault-seed", 0, "deterministic seed for fault draws (same seed = same schedule)")
	lossRate := flag.Float64("loss-rate", 0, "per-message loss probability in [0,1)")
	dupRate := flag.Float64("dup-rate", 0, "per-message duplication probability in [0,1)")
	slowdowns := flag.String("slowdown", "", "slowdown windows proc:factor[:start[:duration]],...")
	crashes := flag.String("crash", "", "fail-stop crashes proc@time,proc@time,...")
	ckptInterval := flag.Float64("checkpoint-interval", 0, "coordinated checkpoint every so many simulated seconds (0 = off)")
	hardCrashes := flag.Bool("hard-crashes", false, "concurrent backend: scheduled crashes kill the worker goroutine for real (run-level heal)")
	maxRestarts := flag.Int("max-restarts", 0, "concurrent backend: run-level heals before giving up (0 = default, negative = disabled)")
	flag.Parse()

	var source string
	switch {
	case *tomcatv:
		source = phpf.TOMCATVSource(*n, *iters)
	case *dgefa:
		source = phpf.DGEFASource(*n)
	case *appsp:
		source = phpf.APPSPSource(*n, *n, *n, *iters, *twoD)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: phpfrun [-p procs] [-opt level] file.f | -tomcatv|-dgefa|-appsp [-n size] [-iters k]")
		os.Exit(2)
	}

	var opts phpf.Options
	switch *level {
	case "naive":
		opts = phpf.NaiveOptions()
	case "producer":
		opts = phpf.ProducerOptions()
	case "selected":
		opts = phpf.SelectedOptions()
	default:
		fmt.Fprintf(os.Stderr, "phpfrun: unknown level %q\n", *level)
		os.Exit(2)
	}
	if *privatize != "" {
		mode, ok := phpf.ParsePrivMode(*privatize)
		if !ok {
			fmt.Fprintf(os.Stderr, "phpfrun: unknown privatization mode %q (directives, infer, infer-strict)\n", *privatize)
			os.Exit(2)
		}
		opts.Privatization = mode
	}

	plan := &phpf.FaultPlan{Seed: *faultSeed, LossRate: *lossRate, DupRate: *dupRate}
	if *slowdowns != "" {
		var err error
		if plan.Slowdowns, err = phpf.ParseSlowdowns(*slowdowns); err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: -slowdown: %v\n", err)
			os.Exit(2)
		}
	}
	if *crashes != "" {
		var err error
		if plan.Crashes, err = phpf.ParseCrashes(*crashes); err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: -crash: %v\n", err)
			os.Exit(2)
		}
	}
	if !plan.Active() {
		plan = nil
	}

	c, err := phpf.Compile(source, *procs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
		os.Exit(1)
	}
	for _, d := range c.Diags() {
		// The diagnostic's own rendering carries its severity and position.
		if d.Severity >= phpf.SeverityWarning {
			fmt.Fprintf(os.Stderr, "phpfrun: %s\n", d)
		}
	}

	b, ok := phpf.BackendByName(*backend)
	if !ok {
		fmt.Fprintf(os.Stderr, "phpfrun: unknown backend %q (want sim or concurrent)\n", *backend)
		os.Exit(2)
	}

	run := phpf.RunOptions{
		Workers:            *workers,
		StallTimeout:       *stallTimeout,
		Fault:              plan,
		CheckpointInterval: *ckptInterval,
	}
	if *reduce != "" {
		mode, ok := phpf.ParseReduceMode(*reduce)
		if !ok {
			fmt.Fprintf(os.Stderr, "phpfrun: unknown reduce mode %q (auto, collective, privatize)\n", *reduce)
			os.Exit(2)
		}
		run.Reduce = mode
	}
	if b.Name() == "sim" {
		// Simulator-only knobs: leave them zero for the concurrent backend,
		// which would reject them with an E005 diagnostic.
		run.MaxSeconds = *maxSec
		run.Profile = *profile
		run.Workers = 0
		run.StallTimeout = 0
		if *hardCrashes {
			fmt.Fprintln(os.Stderr, "phpfrun: -hard-crashes needs the concurrent backend (add -exec concurrent)")
			os.Exit(2)
		}
	} else {
		if *profile || *maxSec > 0 {
			fmt.Fprintln(os.Stderr, "phpfrun: -profile/-max are simulator-only (drop -exec concurrent)")
			os.Exit(2)
		}
		run.HardCrashes = *hardCrashes
		run.MaxRestarts = *maxRestarts
	}
	if *traceOut != "" || *traceSummary {
		run.Trace = &phpf.TraceOptions{SampleEvery: *traceSample}
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	start := time.Now()
	rep, err := c.Execute(ctx, b, run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
		os.Exit(1)
	}

	status := ""
	if rep.Aborted {
		status = " (aborted at limit)"
	}
	if rep.Workers > 0 {
		fmt.Printf("processors:     %d (%d workers)\n", *procs, rep.Workers)
	} else {
		fmt.Printf("processors:     %d\n", *procs)
	}
	fmt.Printf("optimization:   %s\n", *level)
	fmt.Printf("backend:        %s\n", rep.Backend)
	fmt.Printf("simulated time: %.6f s%s (wall %.3fs)\n", rep.Time, status, time.Since(start).Seconds())
	fmt.Printf("communication:  %v\n", rep.Stats)
	if rep.TrafficMessages > 0 {
		fmt.Printf("real traffic:   %d channel messages\n", rep.TrafficMessages)
	}
	if fs := rep.Stats.FaultString(); fs != "" {
		fmt.Printf("faults:         %s\n", fs)
	}
	if rep.Restarts > 0 || rep.HardRestarts > 0 {
		fmt.Printf("restarts:       %d coordinated, %d run-level heals\n", rep.Restarts, rep.HardRestarts)
	}
	if rep.WireDrops > 0 || rep.WireRetransmits > 0 || rep.WireDuplicates > 0 {
		fmt.Printf("wire faults:    %d dropped, %d retransmitted, %d duplicated (%d suppressed)\n",
			rep.WireDrops, rep.WireRetransmits, rep.WireDuplicates, rep.WireDupSuppressed)
	}
	if *profile {
		fmt.Println("hot statements:")
		fmt.Print(phpf.FormatHotStatements(rep.HotStatements, 10))
	}
	if *traceSummary {
		fmt.Printf("trace:          %d events recorded (%d stored)\n", rep.Trace.Seen(), rep.Trace.Len())
		fmt.Print(rep.Trace.Summary())
		fmt.Println("communication matrix (planned messages, src rows -> dst columns):")
		fmt.Print(rep.Trace.CommMatrix().String())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
			os.Exit(1)
		}
		werr := rep.Trace.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: -trace-out: %v\n", werr)
			os.Exit(1)
		}
		fmt.Printf("trace written:  %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
}
