// Command phpfrun compiles a mini-HPF program and executes it on the
// simulated SP2-style machine, reporting execution time and communication
// statistics.
//
// Usage:
//
//	phpfrun [-p procs] [-opt naive|producer|selected] [-max seconds] file.f
//	phpfrun -tomcatv -n 129 -iters 5 -p 16
//	phpfrun -dgefa -n 128 -p 8
//	phpfrun -appsp -n 16 -iters 2 -2d -p 16
//
// Concurrent backend (one goroutine per simulated processor, real message
// passing, watchdog and panic containment; -deadline is wall-clock):
//
//	phpfrun -tomcatv -p 16 -exec concurrent
//	phpfrun -dgefa -n 64 -p 8 -exec concurrent -workers 8 -deadline 30s -stall 5s
//
// Fault injection (deterministic for a fixed -fault-seed; simulator only):
//
//	phpfrun -dgefa -n 128 -p 8 -fault-seed 42 -loss-rate 0.01
//	phpfrun -tomcatv -p 16 -crash 3@0.5 -checkpoint-interval 0.1
//	phpfrun -tomcatv -p 16 -slowdown 2:1.5:0.1:0.4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"phpf"
)

func main() {
	procs := flag.Int("p", 16, "number of processors")
	level := flag.String("opt", "selected", "optimization level: naive, producer, selected")
	maxSec := flag.Float64("max", 0, "abort after this much simulated time (0 = unlimited)")
	profile := flag.Bool("profile", false, "print per-statement time attribution")
	tomcatv := flag.Bool("tomcatv", false, "run the built-in TOMCATV kernel")
	dgefa := flag.Bool("dgefa", false, "run the built-in DGEFA kernel")
	appsp := flag.Bool("appsp", false, "run the built-in APPSP kernel")
	twoD := flag.Bool("2d", false, "APPSP: use the 2-D distribution")
	n := flag.Int("n", 129, "built-in kernel size")
	iters := flag.Int("iters", 5, "built-in kernel iterations")

	backend := flag.String("exec", "sim", "execution backend: sim (sequential simulator) or concurrent (goroutine per processor)")
	workers := flag.Int("workers", 0, "concurrent backend: worker count (0 = one per simulated processor)")
	deadline := flag.Duration("deadline", 0, "concurrent backend: wall-clock deadline for the whole run (0 = none)")
	stallTimeout := flag.Duration("stall", 0, "concurrent backend: watchdog stall timeout (0 = default, negative = disabled)")

	faultSeed := flag.Int64("fault-seed", 0, "deterministic seed for fault draws (same seed = same schedule)")
	lossRate := flag.Float64("loss-rate", 0, "per-message loss probability in [0,1)")
	dupRate := flag.Float64("dup-rate", 0, "per-message duplication probability in [0,1)")
	slowdowns := flag.String("slowdown", "", "slowdown windows proc:factor[:start[:duration]],...")
	crashes := flag.String("crash", "", "fail-stop crashes proc@time,proc@time,...")
	ckptInterval := flag.Float64("checkpoint-interval", 0, "coordinated checkpoint every so many simulated seconds (0 = off)")
	flag.Parse()

	var source string
	switch {
	case *tomcatv:
		source = phpf.TOMCATVSource(*n, *iters)
	case *dgefa:
		source = phpf.DGEFASource(*n)
	case *appsp:
		source = phpf.APPSPSource(*n, *n, *n, *iters, *twoD)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: phpfrun [-p procs] [-opt level] file.f | -tomcatv|-dgefa|-appsp [-n size] [-iters k]")
		os.Exit(2)
	}

	var opts phpf.Options
	switch *level {
	case "naive":
		opts = phpf.NaiveOptions()
	case "producer":
		opts = phpf.ProducerOptions()
	case "selected":
		opts = phpf.SelectedOptions()
	default:
		fmt.Fprintf(os.Stderr, "phpfrun: unknown level %q\n", *level)
		os.Exit(2)
	}

	plan := &phpf.FaultPlan{Seed: *faultSeed, LossRate: *lossRate, DupRate: *dupRate}
	if *slowdowns != "" {
		var err error
		if plan.Slowdowns, err = phpf.ParseSlowdowns(*slowdowns); err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: -slowdown: %v\n", err)
			os.Exit(2)
		}
	}
	if *crashes != "" {
		var err error
		if plan.Crashes, err = phpf.ParseCrashes(*crashes); err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: -crash: %v\n", err)
			os.Exit(2)
		}
	}
	if !plan.Active() {
		plan = nil
	}

	c, err := phpf.Compile(source, *procs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
		os.Exit(1)
	}
	for _, d := range c.Diags() {
		// The diagnostic's own rendering carries its severity and position.
		if d.Severity >= phpf.SeverityWarning {
			fmt.Fprintf(os.Stderr, "phpfrun: %s\n", d)
		}
	}

	if *backend == "concurrent" {
		if plan != nil || *ckptInterval > 0 {
			fmt.Fprintln(os.Stderr, "phpfrun: fault injection and checkpointing are simulator-only (drop -exec concurrent)")
			os.Exit(2)
		}
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		start := time.Now()
		out, err := c.RunConcurrent(ctx, phpf.ExecConfig{
			Workers:      *workers,
			StallTimeout: *stallTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("processors:     %d (%d workers)\n", *procs, out.Workers)
		fmt.Printf("optimization:   %s\n", *level)
		fmt.Printf("simulated time: %.6f s (wall %.3fs)\n", out.Time, time.Since(start).Seconds())
		fmt.Printf("communication:  %v\n", out.Stats)
		fmt.Printf("real traffic:   %d channel messages\n", out.TrafficMessages)
		return
	}
	if *backend != "sim" {
		fmt.Fprintf(os.Stderr, "phpfrun: unknown backend %q (want sim or concurrent)\n", *backend)
		os.Exit(2)
	}

	out, err := c.Run(phpf.RunConfig{
		MaxSeconds:         *maxSec,
		Profile:            *profile,
		Fault:              plan,
		CheckpointInterval: *ckptInterval,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
		os.Exit(1)
	}
	status := ""
	if out.Aborted {
		status = " (aborted at limit)"
	}
	fmt.Printf("processors:     %d\n", *procs)
	fmt.Printf("optimization:   %s\n", *level)
	fmt.Printf("simulated time: %.6f s%s\n", out.Time, status)
	fmt.Printf("communication:  %v\n", out.Stats)
	if fs := out.Stats.FaultString(); fs != "" {
		fmt.Printf("faults:         %s\n", fs)
	}
	if *profile {
		fmt.Println("hot statements:")
		fmt.Print(phpf.FormatProfile(out.Profile, 10))
	}
}
