// Command phpfrun compiles a mini-HPF program and executes it on the
// simulated SP2-style machine, reporting execution time and communication
// statistics.
//
// Usage:
//
//	phpfrun [-p procs] [-opt naive|producer|selected] [-max seconds] file.f
//	phpfrun -tomcatv -n 129 -iters 5 -p 16
//	phpfrun -dgefa -n 128 -p 8
//	phpfrun -appsp -n 16 -iters 2 -2d -p 16
package main

import (
	"flag"
	"fmt"
	"os"

	"phpf"
)

func main() {
	procs := flag.Int("p", 16, "number of processors")
	level := flag.String("opt", "selected", "optimization level: naive, producer, selected")
	maxSec := flag.Float64("max", 0, "abort after this much simulated time (0 = unlimited)")
	profile := flag.Bool("profile", false, "print per-statement time attribution")
	tomcatv := flag.Bool("tomcatv", false, "run the built-in TOMCATV kernel")
	dgefa := flag.Bool("dgefa", false, "run the built-in DGEFA kernel")
	appsp := flag.Bool("appsp", false, "run the built-in APPSP kernel")
	twoD := flag.Bool("2d", false, "APPSP: use the 2-D distribution")
	n := flag.Int("n", 129, "built-in kernel size")
	iters := flag.Int("iters", 5, "built-in kernel iterations")
	flag.Parse()

	var source string
	switch {
	case *tomcatv:
		source = phpf.TOMCATVSource(*n, *iters)
	case *dgefa:
		source = phpf.DGEFASource(*n)
	case *appsp:
		source = phpf.APPSPSource(*n, *n, *n, *iters, *twoD)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: phpfrun [-p procs] [-opt level] file.f | -tomcatv|-dgefa|-appsp [-n size] [-iters k]")
		os.Exit(2)
	}

	var opts phpf.Options
	switch *level {
	case "naive":
		opts = phpf.NaiveOptions()
	case "producer":
		opts = phpf.ProducerOptions()
	case "selected":
		opts = phpf.SelectedOptions()
	default:
		fmt.Fprintf(os.Stderr, "phpfrun: unknown level %q\n", *level)
		os.Exit(2)
	}

	c, err := phpf.Compile(source, *procs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
		os.Exit(1)
	}
	out, err := c.Run(phpf.RunConfig{MaxSeconds: *maxSec, Profile: *profile})
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpfrun: %v\n", err)
		os.Exit(1)
	}
	status := ""
	if out.Aborted {
		status = " (aborted at limit)"
	}
	fmt.Printf("processors:     %d\n", *procs)
	fmt.Printf("optimization:   %s\n", *level)
	fmt.Printf("simulated time: %.6f s%s\n", out.Time, status)
	fmt.Printf("communication:  %v\n", out.Stats)
	if *profile {
		fmt.Println("hot statements:")
		fmt.Print(phpf.FormatProfile(out.Profile, 10))
	}
}
