// Command phpfbench regenerates the paper's evaluation tables (§5) on the
// simulated machine: Table 1 (TOMCATV under three scalar-mapping levels),
// Table 2 (DGEFA with and without reduction alignment), and Table 3 (APPSP
// under 1-D/2-D distributions with privatization toggles).
//
// Usage:
//
//	phpfbench                 # all tables at the default (scaled) sizes
//	phpfbench -table 1        # one table
//	phpfbench -large          # closer to the paper's sizes (slower)
//	phpfbench -faults         # loss-rate sweep over the three benchmarks
//	phpfbench -diff           # differential oracle: concurrent vs simulator
//	phpfbench -chaos          # seeded physical faults on both backends, oracle-checked
//	phpfbench -trace-summary  # communication matrix for every sweep point
//	phpfbench -reduce-sweep   # collective vs privatized commutative updates
//	phpfbench -reduce collective  # force a reduction strategy on the table runs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"phpf"
)

func main() {
	table := flag.Int("table", 0, "which table to run (1, 2, 3; 0 = all)")
	large := flag.Bool("large", false, "use sizes closer to the paper's (slower)")
	maxSec := flag.Float64("max", 100, "per-run simulated-time abort threshold in seconds (the paper's '1 day' scaled to our problem sizes; 0 = unlimited)")
	faults := flag.Bool("faults", false, "run the fault sweep (loss rates x strategies x benchmarks) instead of the tables")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for the fault sweep")
	diff := flag.Bool("diff", false, "run the differential oracle (concurrent executor vs sequential simulator) instead of the tables")
	chaos := flag.Bool("chaos", false, "run the chaos sweep (seeded loss/dup/crash/checkpoint plans, physically injected into the concurrent backend and oracle-checked against the simulator) instead of the tables")
	traceSummary := flag.Bool("trace-summary", false, "trace every sweep point (benchmark x strategy x procs) and print its communication matrix instead of the tables")
	privatize := flag.String("privatize", "", "privatization mode for the table runs: directives, infer (default), infer-strict")
	reduce := flag.String("reduce", "", "runtime reduction strategy for the table runs: auto (default), collective, privatize")
	reduceSweep := flag.Bool("reduce-sweep", false, "run the reduce sweep (collective vs privatized commutative updates on the histogram and dot-product kernels) instead of the tables")
	flag.Parse()

	var tblCfg []phpf.TableConfig
	{
		var tc phpf.TableConfig
		set := false
		if *privatize != "" {
			mode, ok := phpf.ParsePrivMode(*privatize)
			if !ok {
				fmt.Fprintf(os.Stderr, "phpfbench: unknown privatization mode %q (directives, infer, infer-strict)\n", *privatize)
				os.Exit(2)
			}
			tc.Priv, set = &mode, true
		}
		if *reduce != "" {
			mode, ok := phpf.ParseReduceMode(*reduce)
			if !ok {
				fmt.Fprintf(os.Stderr, "phpfbench: unknown reduce mode %q (auto, collective, privatize)\n", *reduce)
				os.Exit(2)
			}
			tc.Reduce, set = mode, true
		}
		if set {
			tblCfg = append(tblCfg, tc)
		}
	}

	procs := []int{1, 2, 4, 8, 16}

	tomN, tomIter := 129, 5
	dgeN := 128
	apN, apIter := 16, 3
	if *large {
		tomN, tomIter = 257, 10
		dgeN = 256
		apN, apIter = 24, 5
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "phpfbench: %v\n", err)
		os.Exit(1)
	}

	// The -diff and -trace-summary sweeps use reduced sizes: replicated
	// concurrent execution costs roughly nprocs times the sequential
	// simulator per run, and trace matrices are easiest to read when the
	// event counts stay small.
	dTomN, dTomIter := 65, 2
	dDgeN := 64
	dApN, dApIter := 8, 1
	if *large {
		dTomN, dTomIter = tomN, tomIter
		dDgeN = dgeN
		dApN, dApIter = apN, apIter
	}
	sweepProgs := []phpf.DiffProgram{
		{Name: fmt.Sprintf("TOMCATV(n=%d,niter=%d)", dTomN, dTomIter), Source: phpf.TOMCATVSource(dTomN, dTomIter)},
		{Name: fmt.Sprintf("DGEFA(n=%d)", dDgeN), Source: phpf.DGEFASource(dDgeN)},
		{Name: fmt.Sprintf("APPSP-1D(%d^3,niter=%d)", dApN, dApIter), Source: phpf.APPSPSource(dApN, dApN, dApN, dApIter, false)},
		{Name: fmt.Sprintf("APPSP-2D(%d^3,niter=%d)", dApN, dApIter), Source: phpf.APPSPSource(dApN, dApN, dApN, dApIter, true)},
	}

	if *reduceSweep {
		hn, hm, hiter := 256, 32, 4
		dn, dm := 48, 24
		if *large {
			hn, hm, hiter = 1024, 64, 8
			dn, dm = 128, 48
		}
		kernels := []phpf.DiffProgram{
			{Name: fmt.Sprintf("Histogram(n=%d,m=%d,niter=%d)", hn, hm, hiter), Source: phpf.HistogramSource(hn, hm, hiter)},
			{Name: fmt.Sprintf("DotSweep(n=%d,m=%d)", dn, dm), Source: phpf.DotSweepSource(dn, dm)},
		}
		rows, err := phpf.ReduceSweep(kernels, procs, *maxSec)
		if err != nil {
			fail(err)
		}
		fmt.Print(phpf.FormatReduceSweep(rows))
		return
	}

	if *traceSummary {
		points, err := phpf.TraceSweep(context.Background(), sweepProgs, []int{4, 8}, *maxSec)
		if err != nil {
			fail(err)
		}
		fmt.Print(phpf.FormatTraceSweep(points))
		return
	}

	if *chaos {
		// Chaos needs smaller programs still: each plan runs the concurrent
		// backend with real retransmission timers and checkpoint barriers.
		chaosProgs := []phpf.DiffProgram{
			{Name: "TOMCATV(n=33,niter=2)", Source: phpf.TOMCATVSource(33, 2)},
			{Name: "DGEFA(n=32)", Source: phpf.DGEFASource(32)},
			{Name: "APPSP-2D(6^3,niter=1)", Source: phpf.APPSPSource(6, 6, 6, 1, true)},
		}
		rows, err := phpf.ChaosSweep(context.Background(), chaosProgs, 4, phpf.DefaultChaosPlans())
		if err != nil {
			fail(err)
		}
		fmt.Print(phpf.FormatChaosSweep(rows))
		for _, r := range rows {
			if !r.Match() {
				fmt.Fprintln(os.Stderr, "phpfbench: chaos sweep found mismatches")
				os.Exit(1)
			}
		}
		return
	}

	if *diff {
		rows, err := phpf.DiffSweep(context.Background(), sweepProgs, []int{1, 4, 8})
		if err != nil {
			fail(err)
		}
		fmt.Print(phpf.FormatDiffSweep(rows))
		for _, r := range rows {
			if !r.Match() {
				fmt.Fprintln(os.Stderr, "phpfbench: differential oracle found mismatches")
				os.Exit(1)
			}
		}
		return
	}

	if *faults {
		rates := []float64{0, 0.001, 0.01, 0.05}
		sweeps := []struct {
			title  string
			source string
			procs  int
		}{
			{fmt.Sprintf("TOMCATV (n=%d, niter=%d, p=8)", tomN, tomIter), phpf.TOMCATVSource(tomN, tomIter), 8},
			{fmt.Sprintf("DGEFA (n=%d, p=8)", dgeN), phpf.DGEFASource(dgeN), 8},
			{fmt.Sprintf("APPSP (%dx%dx%d, niter=%d, 2-D, p=8)", apN, apN, apN, apIter), phpf.APPSPSource(apN, apN, apN, apIter, true), 8},
		}
		for _, s := range sweeps {
			rows, err := phpf.FaultSweep(s.source, s.procs, rates, *faultSeed, *maxSec)
			if err != nil {
				fail(err)
			}
			fmt.Print(phpf.FormatFaultSweep(s.title, rates, rows))
			fmt.Println()
		}
		return
	}

	if *table == 0 || *table == 1 {
		rows, err := phpf.Table1TOMCATV(tomN, tomIter, procs, *maxSec, tblCfg...)
		if err != nil {
			fail(err)
		}
		fmt.Print(phpf.FormatTable1(tomN, tomIter, rows))
		fmt.Println()
	}
	if *table == 0 || *table == 2 {
		rows, err := phpf.Table2DGEFA(dgeN, procs[1:], *maxSec, tblCfg...)
		if err != nil {
			fail(err)
		}
		fmt.Print(phpf.FormatTable2(dgeN, rows))
		fmt.Println()
	}
	if *table == 0 || *table == 3 {
		rows, err := phpf.Table3APPSP(apN, apN, apN, apIter, procs[1:], *maxSec, tblCfg...)
		if err != nil {
			fail(err)
		}
		fmt.Print(phpf.FormatTable3(apN, apN, apN, apIter, rows))
		fmt.Println()
	}
}
