// Command phpfc is the compiler driver: it parses and analyzes a mini-HPF
// program and prints the mapping decisions, the communication plan, and the
// generated SPMD form.
//
// Usage:
//
//	phpfc [-p procs] [-opt naive|producer|selected] [-dump mapping|comm|spmd|all] file.f
//	phpfc -figure figure1          # analyze one of the paper's figures
//	phpfc -trace file.f            # print the per-pass compile profile
//	phpfc -dump-after=ssa file.f   # print the unit snapshot after a pass
//	phpfc -verify file.f           # run the IR/SSA/mapping verifier
//	phpfc -reduce auto file.f      # print the reduction plan under a runtime strategy
package main

import (
	"flag"
	"fmt"
	"os"

	"phpf"
)

func main() {
	procs := flag.Int("p", 16, "number of processors")
	level := flag.String("opt", "selected", "optimization level: naive, producer, selected")
	dump := flag.String("dump", "all", "what to print: mapping, comm, spmd, labels, all")
	figure := flag.String("figure", "", "analyze a paper figure instead of a file (figure1, figure2, figure4, figure5, figure6, figure7)")
	trace := flag.Bool("trace", false, "print the per-pass compile profile (wall time, diagnostics, re-runs)")
	dumpAfter := flag.String("dump-after", "", "print the compilation unit snapshot after the named pass (ir, cfg, ssa, constprop, induction, autopriv, mapping, analyze)")
	verify := flag.Bool("verify", false, "run the IR/SSA/mapping verifier between passes")
	privatize := flag.String("privatize", "", "privatization mode: directives, infer (default), infer-strict")
	explainPriv := flag.Bool("explain-priv", false, "print the per-variable privatization decisions with reasons")
	reduce := flag.String("reduce", "", "print the reduction plan under this runtime strategy: auto, collective, privatize")
	flag.Parse()

	var source string
	switch {
	case *figure != "":
		s, ok := phpf.FigureSource(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "phpfc: unknown figure %q; available: %v\n", *figure, phpf.FigureNames())
			os.Exit(2)
		}
		source = s
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "phpfc: %v\n", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: phpfc [-p procs] [-opt level] [-dump what] file.f | -figure name")
		os.Exit(2)
	}

	var opts phpf.Options
	switch *level {
	case "naive":
		opts = phpf.NaiveOptions()
	case "producer":
		opts = phpf.ProducerOptions()
	case "selected":
		opts = phpf.SelectedOptions()
	default:
		fmt.Fprintf(os.Stderr, "phpfc: unknown level %q\n", *level)
		os.Exit(2)
	}

	opts.Verify = opts.Verify || *verify
	opts.DumpAfter = *dumpAfter
	if *privatize != "" {
		mode, ok := phpf.ParsePrivMode(*privatize)
		if !ok {
			fmt.Fprintf(os.Stderr, "phpfc: unknown privatization mode %q (directives, infer, infer-strict)\n", *privatize)
			os.Exit(2)
		}
		opts.Privatization = mode
	}

	c, err := phpf.Compile(source, *procs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phpfc: %v\n", err)
		os.Exit(1)
	}
	for _, d := range c.Diags() {
		if d.Severity >= phpf.SeverityWarning {
			fmt.Fprintf(os.Stderr, "phpfc: %s\n", d)
		}
	}
	if *dumpAfter != "" {
		snap, ok := c.Profile().Dumps[*dumpAfter]
		if !ok {
			fmt.Fprintf(os.Stderr, "phpfc: no pass named %q in the pipeline\n", *dumpAfter)
			os.Exit(2)
		}
		fmt.Printf("=== unit after %s ===\n", *dumpAfter)
		fmt.Print(snap)
		return
	}
	if *trace {
		fmt.Println("=== compile profile ===")
		fmt.Print(c.Profile().String())
		return
	}
	if *explainPriv {
		fmt.Println("=== privatization decisions ===")
		fmt.Print(c.ExplainPriv())
		return
	}
	if *reduce != "" {
		mode, ok := phpf.ParseReduceMode(*reduce)
		if !ok {
			fmt.Fprintf(os.Stderr, "phpfc: unknown reduce mode %q (auto, collective, privatize)\n", *reduce)
			os.Exit(2)
		}
		fmt.Println("=== reduction plan ===")
		fmt.Print(c.ReducePlanReport(mode))
		return
	}
	if *dump == "mapping" || *dump == "all" {
		fmt.Println("=== mapping decisions ===")
		fmt.Print(c.MappingReport())
	}
	if *dump == "comm" || *dump == "all" {
		fmt.Println("=== communication plan ===")
		fmt.Print(c.CommReport())
	}
	if *dump == "spmd" || *dump == "all" {
		fmt.Println("=== SPMD program ===")
		fmt.Print(c.DumpSPMD())
	}
	if *dump == "labels" {
		// The statement-label table trace events reference (phpfrun
		// -trace-out/-trace-summary attributes activity to these IDs).
		fmt.Println("=== statement labels ===")
		fmt.Print(c.FormatStmtLabels())
	}
}
