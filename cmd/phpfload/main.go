// Command phpfload drives a phpfserve instance with sustained concurrent
// mixed-program traffic and reports what the service did under it: p50/p99
// client-observed latency, shed rate, cache-hit rate, and the status-class
// histogram. It is the load half of the serving robustness contract — CI
// boots phpfserve, fires a burst, and asserts zero 5xx for well-formed
// requests plus real shedding under forced overload.
//
// Usage:
//
//	phpfload -addr http://127.0.0.1:8080 -c 32 -duration 5s
//	phpfload -addr http://127.0.0.1:8080 -c 64 -chaos 0.1 -diff 0.05
//	phpfload -addr ... -c 256 -tenants 1 -require-shed   # forced overload
//	phpfload -addr ... -fail-on-5xx -json
//
// The mix crosses the built-in figure programs (plus the smooth kernel)
// with the three optimization strategies, both backends, and the -procs
// list; -chaos routes that fraction of requests through the server's fault
// layer (the server must run with -chaos), and -bad sends that fraction as
// deliberately malformed requests (expected 4xx, never 5xx).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phpf"
	"phpf/internal/serve"
)

type result struct {
	status  int
	latency time.Duration
	cache   string // X-Cache header: hit|miss|coalesced|"" (non-2xx or error)
	failed  bool   // transport error
	bad     bool   // this was a deliberately malformed request
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "phpfserve base URL")
	concurrency := flag.Int("c", 16, "concurrent client workers")
	duration := flag.Duration("duration", 5*time.Second, "how long to sustain the load")
	procsList := flag.String("procs", "4,16", "comma-separated processor counts to mix")
	backends := flag.String("backends", "sim,concurrent", "comma-separated backends to mix")
	chaosFrac := flag.Float64("chaos", 0, "fraction of requests routed through the fault layer (server needs -chaos)")
	diffFrac := flag.Float64("diff", 0, "fraction of requests sent to /v1/diff instead of /v1/run")
	badFrac := flag.Float64("bad", 0, "fraction of deliberately malformed requests (expect 4xx)")
	tenants := flag.Int("tenants", 4, "number of distinct tenants to spread traffic over")
	timeoutMS := flag.Int64("timeout-ms", 30000, "per-request execution deadline sent in the spec")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON on stdout")
	failOn5xx := flag.Bool("fail-on-5xx", false, "exit nonzero if any request answered 5xx")
	requireShed := flag.Bool("require-shed", false, "exit nonzero unless at least one request was shed with 429")
	flag.Parse()

	for _, f := range []struct {
		name string
		v    float64
	}{{"-chaos", *chaosFrac}, {"-diff", *diffFrac}, {"-bad", *badFrac}} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			fmt.Fprintf(os.Stderr, "phpfload: %s must be in [0,1], got %v\n", f.name, f.v)
			os.Exit(2)
		}
	}

	runs, diffs := buildMix(*procsList, *backends, *timeoutMS, *chaosFrac)
	if len(runs) == 0 {
		fmt.Fprintln(os.Stderr, "phpfload: empty request mix (check -procs/-backends)")
		os.Exit(2)
	}

	client := &http.Client{Timeout: time.Duration(*timeoutMS)*time.Millisecond + 30*time.Second}
	deadline := time.Now().Add(*duration)
	var seq atomic.Int64
	results := make([][]result, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := seq.Add(1)
				tenant := "load-" + strconv.FormatInt(i%int64(max(1, *tenants)), 10)
				var r result
				switch {
				case *badFrac > 0 && frac(i, *badFrac):
					r = post(client, *addr+"/v1/run", malformedBody(i), tenant)
					r.bad = true
				case *diffFrac > 0 && frac(i+7, *diffFrac):
					r = post(client, *addr+"/v1/diff", diffs[int(i)%len(diffs)], tenant)
				default:
					r = post(client, *addr+"/v1/run", runs[int(i)%len(runs)], tenant)
				}
				results[w] = append(results[w], r)
			}
		}(w)
	}
	wg.Wait()

	sum := summarize(flatten(results), *duration)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sum)
	} else {
		printSummary(sum)
	}
	if snap := fetchHealthz(client, *addr); snap != "" && !*jsonOut {
		fmt.Printf("server /healthz: %s\n", snap)
	}

	code := 0
	if *failOn5xx && sum.Status5xx > 0 {
		fmt.Fprintf(os.Stderr, "phpfload: FAIL: %d 5xx responses\n", sum.Status5xx)
		code = 1
	}
	if *requireShed && sum.Shed == 0 {
		fmt.Fprintln(os.Stderr, "phpfload: FAIL: overload did not shed a single request")
		code = 1
	}
	if sum.Transport > 0 {
		fmt.Fprintf(os.Stderr, "phpfload: FAIL: %d transport errors\n", sum.Transport)
		code = 1
	}
	os.Exit(code)
}

// frac deterministically selects roughly the given fraction of sequence
// numbers (stateless, so workers need no shared RNG).
func frac(i int64, f float64) bool {
	return float64(i%1000) < f*1000
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildMix pre-marshals the request bodies: figures × strategies × procs ×
// backends for /v1/run (every chaosFrac'th carrying a fault spec), and a
// smaller sim-side mix for /v1/diff.
func buildMix(procsList, backends string, timeoutMS int64, chaosFrac float64) (runs, diffs [][]byte) {
	var procs []int
	for _, p := range strings.Split(procsList, ",") {
		if n, err := strconv.Atoi(strings.TrimSpace(p)); err == nil && n > 0 {
			procs = append(procs, n)
		}
	}
	var bks []string
	for _, b := range strings.Split(backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			bks = append(bks, b)
		}
	}
	programs := append(phpf.FigureNames(), "smooth")
	opts := []string{"naive", "producer", "selected"}
	i := 0
	for _, prog := range programs {
		for _, opt := range opts {
			for _, p := range procs {
				for _, bk := range bks {
					spec := serve.RunSpec{
						Figure:    prog,
						Procs:     p,
						Opt:       opt,
						Backend:   bk,
						TimeoutMS: timeoutMS,
					}
					i++
					if chaosFrac > 0 && frac(int64(i), chaosFrac) {
						spec.Chaos = &serve.ChaosSpec{
							Seed:               int64(i),
							LossRate:           0.02,
							DupRate:            0.01,
							CheckpointInterval: 0.05,
						}
					}
					body, _ := json.Marshal(spec)
					runs = append(runs, body)
				}
				dspec := serve.RunSpec{Figure: prog, Procs: p, Opt: opt, TimeoutMS: timeoutMS}
				dbody, _ := json.Marshal(dspec)
				diffs = append(diffs, dbody)
			}
		}
	}
	return runs, diffs
}

// malformedBody cycles through representative bad requests: broken JSON,
// unknown fields, a parse-error program, absurd values. All must answer
// 4xx — none may take the server down or 5xx.
func malformedBody(i int64) []byte {
	bad := []string{
		`{"figure": "figure1", "procs": 4`,                        // truncated JSON
		`{"figure": "figure1", "procs": 4, "bogus_field": 1}`,     // unknown field
		`{"source": "this is not a program", "procs": 4}`,         // parse error
		`{"figure": "figure1", "procs": -3}`,                      // absurd procs
		`{"figure": "no-such-figure", "procs": 4}`,                // unknown figure
		`{"figure": "figure1", "procs": 4, "timeout_ms": -5}`,     // negative timeout
		`{"figure": "figure1", "procs": 4, "max_cells": -1}`,      // negative budget
		`{"figure": "figure1", "procs": 4, "backend": "quantum"}`, // unknown backend
		`{"figure": "figure1", "source": "x = 1", "procs": 4}`,    // both program forms
		`{"figure": "figure1", "procs": 1000000}`,                 // beyond MaxProcs
	}
	return []byte(bad[int(i)%len(bad)])
}

func post(client *http.Client, url string, body []byte, tenant string) result {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return result{failed: true}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return result{failed: true, latency: lat}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return result{status: resp.StatusCode, latency: lat, cache: resp.Header.Get("X-Cache")}
}

func fetchHealthz(client *http.Client, addr string) string {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

func flatten(rr [][]result) []result {
	var out []result
	for _, r := range rr {
		out = append(out, r...)
	}
	return out
}

// Summary is the load run's aggregate, also emitted as -json.
type Summary struct {
	Requests  int     `json:"requests"`
	Seconds   float64 `json:"seconds"`
	Rate      float64 `json:"req_per_s"`
	Status2xx int     `json:"status_2xx"`
	Status4xx int     `json:"status_4xx"` // excluding 429 sheds
	Status5xx int     `json:"status_5xx"`
	Shed      int     `json:"shed"`
	Transport int     `json:"transport_errors"`
	BadSent   int     `json:"malformed_sent"`

	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`

	CacheHit       int     `json:"cache_hit"`
	CacheMiss      int     `json:"cache_miss"`
	CacheCoalesced int     `json:"cache_coalesced"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	ShedRate       float64 `json:"shed_rate"`
}

func summarize(rs []result, dur time.Duration) Summary {
	s := Summary{Requests: len(rs), Seconds: dur.Seconds()}
	var lats []time.Duration
	var sum time.Duration
	for _, r := range rs {
		if r.failed {
			s.Transport++
			continue
		}
		if r.bad {
			s.BadSent++
		}
		switch {
		case r.status == 429:
			s.Shed++
		case r.status >= 500:
			s.Status5xx++
		case r.status >= 400:
			s.Status4xx++
		default:
			s.Status2xx++
			lats = append(lats, r.latency)
			sum += r.latency
		}
		switch r.cache {
		case "hit":
			s.CacheHit++
		case "miss":
			s.CacheMiss++
		case "coalesced":
			s.CacheCoalesced++
		}
	}
	if s.Seconds > 0 {
		s.Rate = float64(s.Requests) / s.Seconds
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(lats)-1))
			return float64(lats[i]) / float64(time.Millisecond)
		}
		s.P50Ms, s.P90Ms, s.P99Ms = q(0.50), q(0.90), q(0.99)
		s.MeanMs = float64(sum) / float64(len(lats)) / float64(time.Millisecond)
	}
	if lookups := s.CacheHit + s.CacheMiss + s.CacheCoalesced; lookups > 0 {
		s.CacheHitRate = float64(s.CacheHit+s.CacheCoalesced) / float64(lookups)
	}
	if s.Requests > 0 {
		s.ShedRate = float64(s.Shed) / float64(s.Requests)
	}
	return s
}

func printSummary(s Summary) {
	fmt.Printf("phpfload: %d requests in %.1fs (%.1f req/s)\n", s.Requests, s.Seconds, s.Rate)
	fmt.Printf("status:   2xx=%d 4xx=%d 5xx=%d shed(429)=%d transport-errors=%d malformed-sent=%d\n",
		s.Status2xx, s.Status4xx, s.Status5xx, s.Shed, s.Transport, s.BadSent)
	fmt.Printf("latency:  p50=%.2fms p90=%.2fms p99=%.2fms mean=%.2fms\n", s.P50Ms, s.P90Ms, s.P99Ms, s.MeanMs)
	fmt.Printf("cache:    hit=%d miss=%d coalesced=%d (hit rate %.1f%%)\n",
		s.CacheHit, s.CacheMiss, s.CacheCoalesced, 100*s.CacheHitRate)
	fmt.Printf("shed rate: %.2f%%\n", 100*s.ShedRate)
}
